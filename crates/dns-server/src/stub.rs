//! The client-side stub resolver engine.
//!
//! A UE (or any client behavior) embeds a [`StubEngine`] and delegates
//! datagrams and timers to it. The engine supports the three dispatch
//! strategies §3 of the paper discusses for connecting end users to the
//! MEC L-DNS:
//!
//! * [`SendStrategy::Unicast`] — the ordinary single-resolver case.
//! * [`SendStrategy::Multicast`] — *"have DNS requests be multicast to
//!   both MEC DNS and the network's L-DNS"*; the first answer wins.
//! * [`SendStrategy::FallbackOnTimeout`] — *"or even be forwarded to
//!   L-DNS on timeout from MEC DNS"*.
//!
//! Every completed query yields a [`QueryOutcome`] carrying the RTT the
//! paper's figures plot.

use dns_wire::{ClientSubnet, Message, Name, Rcode, RrType};
use netsim::{Datagram, NodeContext, SimDuration, SimTime, Telemetry};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

/// Timer tag the engine uses; client behaviors embedding an engine must
/// keep their own timer data below this bit.
const TAG_STUB: u64 = 0xD5 << 56;
const TAG_MASK: u64 = 0xFF << 56;

/// Where (and how) a query is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendStrategy {
    /// One resolver, with retries on timeout.
    Unicast(IpAddr),
    /// Several resolvers at once; first answer wins, the rest are
    /// ignored.
    Multicast(Vec<IpAddr>),
    /// Ask `primary`; if no answer within `timeout`, ask `fallback`
    /// (while still accepting a late primary answer).
    FallbackOnTimeout {
        /// First choice (the MEC DNS).
        primary: IpAddr,
        /// Second choice (the provider's L-DNS).
        fallback: IpAddr,
        /// How long to give the primary.
        timeout: SimDuration,
    },
    /// The federated-anycast policy: it distinguishes *"my site died"*
    /// from *"resolution failed"*. Silence means the packet blackholed
    /// at a dead catchment site — the right move is to retransmit to
    /// the **same** anycast address and let routing reconverge to the
    /// next site, not to flee to the cloud. A SERVFAIL or REFUSED is an
    /// affirmative *"the MEC federation cannot resolve this"*, so only
    /// then does the query leave the edge for `cloud`.
    CloudOnServfail {
        /// The anycast resolver address every federated site advertises.
        anycast: IpAddr,
        /// The cloud resolver of last resort.
        cloud: IpAddr,
    },
}

/// The result of one completed (or failed) query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Caller-supplied correlation tag.
    pub tag: u64,
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RrType,
    /// Response code, or `ServFail` on total timeout.
    pub rcode: Rcode,
    /// A-record addresses in the answer.
    pub addrs: Vec<Ipv4Addr>,
    /// CNAME chain observed in the answer, in order.
    pub cnames: Vec<Name>,
    /// Time from first transmission to the accepted answer.
    pub rtt: SimDuration,
    /// Resolver that provided the accepted answer.
    pub responder: Option<IpAddr>,
    /// True when no resolver answered at all.
    pub timed_out: bool,
    /// True when the answer came from the fallback resolver.
    pub used_fallback: bool,
    /// Scope prefix of the ECS option in the response, if any.
    pub ecs_scope: Option<u8>,
}

struct Pending {
    tag: u64,
    name: Name,
    qtype: RrType,
    strategy: SendStrategy,
    started: SimTime,
    retries_left: u8,
    /// Timeouts observed so far; drives the exponential backoff.
    attempt: u8,
    fallback_sent: bool,
    /// Multicast members that answered SERVFAIL (an affirmative "I
    /// cannot"): the query stays open until someone answers or everyone
    /// has refused.
    servfails: Vec<IpAddr>,
    ecs: Option<ClientSubnet>,
}

/// Client-side query engine: id allocation, retries with exponential
/// backoff, multicast and fallback, SERVFAIL-vs-silence handling, and
/// RTT accounting.
pub struct StubEngine {
    pending: HashMap<u16, Pending>,
    next_id: u16,
    telemetry: Telemetry,
    /// Base timeout: how long the first transmission waits. Each
    /// retransmission doubles the wait (deterministic, jitter-free),
    /// capped at [`StubEngine::max_backoff`].
    pub query_timeout: SimDuration,
    /// Retransmissions before giving up. Applies to every strategy: a
    /// `FallbackOnTimeout` query retransmits to both resolvers after the
    /// fallback is engaged, rather than waiting a single extra timeout.
    pub retries: u8,
    /// Upper bound on one backoff interval.
    pub max_backoff: SimDuration,
    /// Completed queries, in completion order.
    pub outcomes: Vec<QueryOutcome>,
}

impl Default for StubEngine {
    fn default() -> Self {
        StubEngine::new()
    }
}

impl StubEngine {
    /// An engine with the defaults used throughout the experiments:
    /// 3-second timeout, 1 retry, 30-second backoff cap.
    pub fn new() -> Self {
        StubEngine {
            pending: HashMap::new(),
            next_id: 1,
            telemetry: Telemetry::default(),
            query_timeout: SimDuration::from_secs(3),
            retries: 1,
            max_backoff: SimDuration::from_secs(30),
            outcomes: Vec::new(),
        }
    }

    /// The wait after the `attempt`-th timeout: `query_timeout * 2^attempt`,
    /// capped at `max_backoff`. Purely a function of configuration — no
    /// random jitter — so retry timelines are reproducible.
    fn backoff(&self, attempt: u8) -> SimDuration {
        let shift = u32::from(attempt.min(16));
        let ns = self.query_timeout.as_nanos().saturating_mul(1u64 << shift);
        SimDuration::from_nanos(ns).min(self.max_backoff)
    }

    /// Routes this engine's telemetry into `t`. Breadcrumbs are keyed by
    /// the engine's DNS transaction ids — the same ids the P-GW tap sees
    /// in the wire payloads, which is what makes trace-vs-tap
    /// cross-validation possible.
    pub fn set_telemetry(&mut self, t: Telemetry) {
        self.telemetry = t;
    }

    /// True if the timer `data` belongs to this engine and must be passed
    /// to [`StubEngine::on_timer`].
    pub fn owns_timer(data: u64) -> bool {
        data & TAG_MASK == TAG_STUB
    }

    /// Number of queries still awaiting an answer.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Issues a query. `tag` is returned in the outcome for correlation;
    /// `ecs` optionally attaches a client-subnet option (the §4 ECS
    /// experiments).
    pub fn issue(
        &mut self,
        ctx: &mut NodeContext<'_>,
        name: Name,
        qtype: RrType,
        strategy: SendStrategy,
        ecs: Option<ClientSubnet>,
        tag: u64,
    ) -> u16 {
        let id = self.alloc_id();
        let pending = Pending {
            tag,
            name: name.clone(),
            qtype,
            strategy: strategy.clone(),
            started: ctx.now(),
            retries_left: self.retries,
            attempt: 0,
            fallback_sent: false,
            servfails: Vec::new(),
            ecs,
        };
        self.pending.insert(id, pending);
        self.telemetry.incr("stub.query");
        self.telemetry
            .mark(u64::from(id), ctx.now(), "stub.issue", name.canonical());
        match &strategy {
            SendStrategy::Unicast(server) => {
                self.transmit(ctx, id, *server);
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
            }
            SendStrategy::Multicast(servers) => {
                for s in servers {
                    self.transmit(ctx, id, *s);
                }
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
            }
            SendStrategy::FallbackOnTimeout {
                primary, timeout, ..
            } => {
                self.transmit(ctx, id, *primary);
                ctx.set_timer(*timeout, TAG_STUB | u64::from(id));
            }
            SendStrategy::CloudOnServfail { anycast, .. } => {
                self.transmit(ctx, id, *anycast);
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
            }
        }
        id
    }

    fn alloc_id(&mut self) -> u16 {
        for _ in 0..=u16::MAX {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            if !self.pending.contains_key(&id) {
                return id;
            }
        }
        // detlint: allow(hot-panic) — reaching 65535 simultaneously
        // in-flight queries means the driving experiment is wedged;
        // aborting is more honest than silently reusing a live id.
        panic!("65535 concurrent stub queries");
    }

    fn transmit(&self, ctx: &mut NodeContext<'_>, id: u16, server: IpAddr) {
        let Some(p) = self.pending.get(&id) else {
            return; // query already completed; nothing to retransmit
        };
        let mut q = Message::query(id, p.name.clone(), p.qtype);
        q.header.recursion_desired = true;
        if let Some(cs) = p.ecs {
            q = q.with_client_subnet(cs);
        }
        let Ok(bytes) = q.encode() else {
            return; // unencodable query: drop it, let the timer expire it
        };
        ctx.send(server, 53, bytes);
    }

    /// Feeds a datagram to the engine. Returns the completed outcome if
    /// this datagram finished a query; `None` if it was consumed as a
    /// duplicate/late answer, a SERVFAIL the engine keeps working around,
    /// or was not DNS at all.
    ///
    /// SERVFAIL is treated as an affirmative refusal, distinct from
    /// silence: a `FallbackOnTimeout` primary's SERVFAIL engages the
    /// fallback immediately instead of waiting out the timer, and a
    /// multicast query only fails once *every* member has refused.
    pub fn on_datagram(
        &mut self,
        ctx: &mut NodeContext<'_>,
        dgram: &Datagram,
    ) -> Option<QueryOutcome> {
        let msg = Message::decode(&dgram.payload).ok()?;
        if !msg.header.is_response {
            return None;
        }
        let id = msg.header.id;
        let rcode = msg.header.rcode;
        if rcode == Rcode::ServFail || rcode == Rcode::Refused {
            let p = self.pending.get_mut(&id)?;
            match p.strategy.clone() {
                SendStrategy::FallbackOnTimeout {
                    primary, fallback, ..
                } if rcode == Rcode::ServFail && !p.fallback_sent && dgram.src == primary => {
                    // The primary affirmatively refused — no point
                    // waiting for its timer before trying the fallback.
                    p.fallback_sent = true;
                    self.telemetry.incr("stub.servfail");
                    self.telemetry.mark(
                        u64::from(id),
                        ctx.now(),
                        "stub.servfail",
                        fallback.to_string(),
                    );
                    self.transmit(ctx, id, fallback);
                    ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
                    return None;
                }
                SendStrategy::CloudOnServfail { anycast, cloud }
                    if !p.fallback_sent && dgram.src == anycast =>
                {
                    // The federation affirmatively cannot resolve this
                    // name (SERVFAIL *or* REFUSED) — that is "resolution
                    // failed", the one case that leaves the edge for the
                    // cloud resolver.
                    p.fallback_sent = true;
                    self.telemetry.incr("stub.servfail");
                    self.telemetry.mark(
                        u64::from(id),
                        ctx.now(),
                        "stub.servfail",
                        cloud.to_string(),
                    );
                    self.transmit(ctx, id, cloud);
                    ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
                    return None;
                }
                SendStrategy::Multicast(servers) if rcode == Rcode::ServFail => {
                    if !p.servfails.contains(&dgram.src) {
                        p.servfails.push(dgram.src);
                    }
                    self.telemetry.incr("stub.servfail");
                    if p.servfails.len() < servers.len() {
                        // Someone else may still answer; hold the query
                        // open (its timer is the backstop).
                        return None;
                    }
                    // Everyone refused: fall through and complete with
                    // the SERVFAIL (an answer, not a timeout).
                }
                _ => {}
            }
        }
        let pending = self.pending.remove(&id)?;
        let used_fallback = match &pending.strategy {
            SendStrategy::FallbackOnTimeout { fallback, .. } => dgram.src == *fallback,
            SendStrategy::CloudOnServfail { cloud, .. } => dgram.src == *cloud,
            _ => false,
        };
        let mut cnames = Vec::new();
        for rec in &msg.answers {
            if let Some(target) = rec.rdata.as_cname() {
                cnames.push(target.clone());
            }
        }
        let outcome = QueryOutcome {
            tag: pending.tag,
            name: pending.name,
            qtype: pending.qtype,
            rcode: msg.header.rcode,
            addrs: msg.answer_a_addrs(),
            cnames,
            rtt: ctx.now() - pending.started,
            responder: Some(dgram.src),
            timed_out: false,
            used_fallback,
            ecs_scope: msg.client_subnet().map(|cs| cs.scope_prefix),
        };
        self.telemetry.observe("stub.rtt", outcome.rtt);
        self.telemetry.mark(
            u64::from(msg.header.id),
            ctx.now(),
            "stub.answer",
            dgram.src.to_string(),
        );
        self.outcomes.push(outcome.clone());
        Some(outcome)
    }

    /// Feeds an engine timer. Returns a final (failed) outcome when the
    /// query is abandoned.
    pub fn on_timer(&mut self, ctx: &mut NodeContext<'_>, data: u64) -> Option<QueryOutcome> {
        debug_assert!(Self::owns_timer(data));
        let id = (data & !TAG_MASK) as u16;
        let p = self.pending.get_mut(&id)?;
        match p.strategy.clone() {
            SendStrategy::FallbackOnTimeout { fallback, .. } if !p.fallback_sent => {
                // Primary silent: engage the fallback, then wait the full
                // query timeout for either to answer. Engaging the
                // fallback is strategy, not a retry — it does not touch
                // the budget or the backoff clock.
                p.fallback_sent = true;
                self.telemetry.incr("stub.fallback");
                self.telemetry
                    .mark(u64::from(id), ctx.now(), "stub.fallback", fallback.to_string());
                self.transmit(ctx, id, fallback);
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
                None
            }
            SendStrategy::Unicast(server) if p.retries_left > 0 => {
                p.retries_left -= 1;
                p.attempt = p.attempt.saturating_add(1);
                let attempt = p.attempt;
                let wait = self.backoff(attempt);
                self.telemetry.incr("stub.retry");
                self.telemetry
                    .mark(u64::from(id), ctx.now(), "stub.retry", server.to_string());
                self.transmit(ctx, id, server);
                ctx.set_timer(wait, TAG_STUB | u64::from(id));
                None
            }
            SendStrategy::Multicast(servers) if p.retries_left > 0 => {
                p.retries_left -= 1;
                p.attempt = p.attempt.saturating_add(1);
                let attempt = p.attempt;
                let wait = self.backoff(attempt);
                self.telemetry.incr("stub.retry");
                self.telemetry
                    .mark(u64::from(id), ctx.now(), "stub.retry", format!("x{}", servers.len()));
                for s in &servers {
                    self.transmit(ctx, id, *s);
                }
                ctx.set_timer(wait, TAG_STUB | u64::from(id));
                None
            }
            SendStrategy::FallbackOnTimeout {
                primary, fallback, ..
            } if p.retries_left > 0 => {
                // Fallback engaged and still silence: retransmit to both
                // within the budget, backing off, instead of abandoning
                // after one extra wait (or retrying a dead primary
                // forever).
                p.retries_left -= 1;
                p.attempt = p.attempt.saturating_add(1);
                let attempt = p.attempt;
                let wait = self.backoff(attempt);
                self.telemetry.incr("stub.retry");
                self.telemetry
                    .mark(u64::from(id), ctx.now(), "stub.retry", fallback.to_string());
                self.transmit(ctx, id, primary);
                self.transmit(ctx, id, fallback);
                ctx.set_timer(wait, TAG_STUB | u64::from(id));
                None
            }
            SendStrategy::CloudOnServfail { anycast, cloud } if p.retries_left > 0 => {
                // Silence on an anycast address means the catchment site
                // died mid-flight. The address itself is still right —
                // routing is reconverging to the next site — so
                // retransmit to the *same* anycast address, backing off.
                // (If a SERVFAIL already sent us to the cloud, keep that
                // leg warm too.)
                p.retries_left -= 1;
                p.attempt = p.attempt.saturating_add(1);
                let attempt = p.attempt;
                let engaged = p.fallback_sent;
                let wait = self.backoff(attempt);
                self.telemetry.incr("stub.retry");
                self.telemetry
                    .mark(u64::from(id), ctx.now(), "stub.retry", anycast.to_string());
                self.transmit(ctx, id, anycast);
                if engaged {
                    self.transmit(ctx, id, cloud);
                }
                ctx.set_timer(wait, TAG_STUB | u64::from(id));
                None
            }
            _ => {
                let p = self.pending.remove(&id)?;
                self.telemetry.incr("stub.timeout");
                self.telemetry.mark(u64::from(id), ctx.now(), "stub.timeout", "");
                let outcome = QueryOutcome {
                    tag: p.tag,
                    name: p.name,
                    qtype: p.qtype,
                    rcode: Rcode::ServFail,
                    addrs: Vec::new(),
                    cnames: Vec::new(),
                    rtt: ctx.now() - p.started,
                    responder: None,
                    timed_out: true,
                    used_fallback: false,
                    ecs_scope: None,
                };
                self.outcomes.push(outcome.clone());
                Some(outcome)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_tag_roundtrip() {
        assert!(StubEngine::owns_timer(TAG_STUB | 42));
        assert!(!StubEngine::owns_timer(42));
        assert!(!StubEngine::owns_timer(0x11 << 56));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = StubEngine::new();
        e.query_timeout = SimDuration::from_millis(250);
        e.max_backoff = SimDuration::from_secs(1);
        assert_eq!(e.backoff(0), SimDuration::from_millis(250));
        assert_eq!(e.backoff(1), SimDuration::from_millis(500));
        assert_eq!(e.backoff(2), SimDuration::from_secs(1));
        assert_eq!(e.backoff(3), SimDuration::from_secs(1), "capped");
        assert_eq!(e.backoff(200), SimDuration::from_secs(1), "shift-safe");
    }
}
