//! The client-side stub resolver engine.
//!
//! A UE (or any client behavior) embeds a [`StubEngine`] and delegates
//! datagrams and timers to it. The engine supports the three dispatch
//! strategies §3 of the paper discusses for connecting end users to the
//! MEC L-DNS:
//!
//! * [`SendStrategy::Unicast`] — the ordinary single-resolver case.
//! * [`SendStrategy::Multicast`] — *"have DNS requests be multicast to
//!   both MEC DNS and the network's L-DNS"*; the first answer wins.
//! * [`SendStrategy::FallbackOnTimeout`] — *"or even be forwarded to
//!   L-DNS on timeout from MEC DNS"*.
//!
//! Every completed query yields a [`QueryOutcome`] carrying the RTT the
//! paper's figures plot.

use dns_wire::{ClientSubnet, Message, Name, Rcode, RrType};
use netsim::{Datagram, NodeContext, SimDuration, SimTime, Telemetry};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

/// Timer tag the engine uses; client behaviors embedding an engine must
/// keep their own timer data below this bit.
const TAG_STUB: u64 = 0xD5 << 56;
const TAG_MASK: u64 = 0xFF << 56;

/// Where (and how) a query is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendStrategy {
    /// One resolver, with retries on timeout.
    Unicast(IpAddr),
    /// Several resolvers at once; first answer wins, the rest are
    /// ignored.
    Multicast(Vec<IpAddr>),
    /// Ask `primary`; if no answer within `timeout`, ask `fallback`
    /// (while still accepting a late primary answer).
    FallbackOnTimeout {
        /// First choice (the MEC DNS).
        primary: IpAddr,
        /// Second choice (the provider's L-DNS).
        fallback: IpAddr,
        /// How long to give the primary.
        timeout: SimDuration,
    },
}

/// The result of one completed (or failed) query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Caller-supplied correlation tag.
    pub tag: u64,
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RrType,
    /// Response code, or `ServFail` on total timeout.
    pub rcode: Rcode,
    /// A-record addresses in the answer.
    pub addrs: Vec<Ipv4Addr>,
    /// CNAME chain observed in the answer, in order.
    pub cnames: Vec<Name>,
    /// Time from first transmission to the accepted answer.
    pub rtt: SimDuration,
    /// Resolver that provided the accepted answer.
    pub responder: Option<IpAddr>,
    /// True when no resolver answered at all.
    pub timed_out: bool,
    /// True when the answer came from the fallback resolver.
    pub used_fallback: bool,
    /// Scope prefix of the ECS option in the response, if any.
    pub ecs_scope: Option<u8>,
}

struct Pending {
    tag: u64,
    name: Name,
    qtype: RrType,
    strategy: SendStrategy,
    started: SimTime,
    retries_left: u8,
    fallback_sent: bool,
    ecs: Option<ClientSubnet>,
}

/// Client-side query engine: id allocation, retries, multicast and
/// fallback, and RTT accounting.
pub struct StubEngine {
    pending: HashMap<u16, Pending>,
    next_id: u16,
    telemetry: Telemetry,
    /// Timeout for unicast retries and for declaring total failure.
    pub query_timeout: SimDuration,
    /// Unicast retries before giving up.
    pub retries: u8,
    /// Completed queries, in completion order.
    pub outcomes: Vec<QueryOutcome>,
}

impl Default for StubEngine {
    fn default() -> Self {
        StubEngine::new()
    }
}

impl StubEngine {
    /// An engine with the defaults used throughout the experiments:
    /// 3-second timeout, 1 retry.
    pub fn new() -> Self {
        StubEngine {
            pending: HashMap::new(),
            next_id: 1,
            telemetry: Telemetry::default(),
            query_timeout: SimDuration::from_secs(3),
            retries: 1,
            outcomes: Vec::new(),
        }
    }

    /// Routes this engine's telemetry into `t`. Breadcrumbs are keyed by
    /// the engine's DNS transaction ids — the same ids the P-GW tap sees
    /// in the wire payloads, which is what makes trace-vs-tap
    /// cross-validation possible.
    pub fn set_telemetry(&mut self, t: Telemetry) {
        self.telemetry = t;
    }

    /// True if the timer `data` belongs to this engine and must be passed
    /// to [`StubEngine::on_timer`].
    pub fn owns_timer(data: u64) -> bool {
        data & TAG_MASK == TAG_STUB
    }

    /// Number of queries still awaiting an answer.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Issues a query. `tag` is returned in the outcome for correlation;
    /// `ecs` optionally attaches a client-subnet option (the §4 ECS
    /// experiments).
    pub fn issue(
        &mut self,
        ctx: &mut NodeContext<'_>,
        name: Name,
        qtype: RrType,
        strategy: SendStrategy,
        ecs: Option<ClientSubnet>,
        tag: u64,
    ) -> u16 {
        let id = self.alloc_id();
        let pending = Pending {
            tag,
            name: name.clone(),
            qtype,
            strategy: strategy.clone(),
            started: ctx.now(),
            retries_left: self.retries,
            fallback_sent: false,
            ecs,
        };
        self.pending.insert(id, pending);
        self.telemetry.incr("stub.query");
        self.telemetry
            .mark(u64::from(id), ctx.now(), "stub.issue", name.canonical());
        match &strategy {
            SendStrategy::Unicast(server) => {
                self.transmit(ctx, id, *server);
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
            }
            SendStrategy::Multicast(servers) => {
                for s in servers {
                    self.transmit(ctx, id, *s);
                }
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
            }
            SendStrategy::FallbackOnTimeout {
                primary, timeout, ..
            } => {
                self.transmit(ctx, id, *primary);
                ctx.set_timer(*timeout, TAG_STUB | u64::from(id));
            }
        }
        id
    }

    fn alloc_id(&mut self) -> u16 {
        for _ in 0..=u16::MAX {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            if !self.pending.contains_key(&id) {
                return id;
            }
        }
        panic!("65535 concurrent stub queries");
    }

    fn transmit(&self, ctx: &mut NodeContext<'_>, id: u16, server: IpAddr) {
        let p = &self.pending[&id];
        let mut q = Message::query(id, p.name.clone(), p.qtype);
        q.header.recursion_desired = true;
        if let Some(cs) = p.ecs {
            q = q.with_client_subnet(cs);
        }
        let bytes = q.encode().expect("stub query encodes");
        ctx.send(server, 53, bytes);
    }

    /// Feeds a datagram to the engine. Returns the completed outcome if
    /// this datagram finished a query; `None` if it was consumed as a
    /// duplicate/late answer or was not DNS at all.
    pub fn on_datagram(
        &mut self,
        ctx: &mut NodeContext<'_>,
        dgram: &Datagram,
    ) -> Option<QueryOutcome> {
        let msg = Message::decode(&dgram.payload).ok()?;
        if !msg.header.is_response {
            return None;
        }
        let pending = self.pending.remove(&msg.header.id)?;
        let used_fallback = match &pending.strategy {
            SendStrategy::FallbackOnTimeout { fallback, .. } => dgram.src == *fallback,
            _ => false,
        };
        let mut cnames = Vec::new();
        for rec in &msg.answers {
            if let Some(target) = rec.rdata.as_cname() {
                cnames.push(target.clone());
            }
        }
        let outcome = QueryOutcome {
            tag: pending.tag,
            name: pending.name,
            qtype: pending.qtype,
            rcode: msg.header.rcode,
            addrs: msg.answer_a_addrs(),
            cnames,
            rtt: ctx.now() - pending.started,
            responder: Some(dgram.src),
            timed_out: false,
            used_fallback,
            ecs_scope: msg.client_subnet().map(|cs| cs.scope_prefix),
        };
        self.telemetry.observe("stub.rtt", outcome.rtt);
        self.telemetry.mark(
            u64::from(msg.header.id),
            ctx.now(),
            "stub.answer",
            dgram.src.to_string(),
        );
        self.outcomes.push(outcome.clone());
        Some(outcome)
    }

    /// Feeds an engine timer. Returns a final (failed) outcome when the
    /// query is abandoned.
    pub fn on_timer(&mut self, ctx: &mut NodeContext<'_>, data: u64) -> Option<QueryOutcome> {
        debug_assert!(Self::owns_timer(data));
        let id = (data & !TAG_MASK) as u16;
        let p = self.pending.get_mut(&id)?;
        match p.strategy.clone() {
            SendStrategy::FallbackOnTimeout { fallback, .. } if !p.fallback_sent => {
                // Primary silent: engage the fallback, then wait the full
                // query timeout for either to answer.
                p.fallback_sent = true;
                self.telemetry.incr("stub.fallback");
                self.telemetry
                    .mark(u64::from(id), ctx.now(), "stub.fallback", fallback.to_string());
                self.transmit(ctx, id, fallback);
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
                None
            }
            SendStrategy::Unicast(server) if p.retries_left > 0 => {
                p.retries_left -= 1;
                self.telemetry.incr("stub.retry");
                self.telemetry
                    .mark(u64::from(id), ctx.now(), "stub.retry", server.to_string());
                self.transmit(ctx, id, server);
                ctx.set_timer(self.query_timeout, TAG_STUB | u64::from(id));
                None
            }
            _ => {
                let p = self.pending.remove(&id).expect("checked above");
                self.telemetry.incr("stub.timeout");
                self.telemetry.mark(u64::from(id), ctx.now(), "stub.timeout", "");
                let outcome = QueryOutcome {
                    tag: p.tag,
                    name: p.name,
                    qtype: p.qtype,
                    rcode: Rcode::ServFail,
                    addrs: Vec::new(),
                    cnames: Vec::new(),
                    rtt: ctx.now() - p.started,
                    responder: None,
                    timed_out: true,
                    used_fallback: false,
                    ecs_scope: None,
                };
                self.outcomes.push(outcome.clone());
                Some(outcome)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_tag_roundtrip() {
        assert!(StubEngine::owns_timer(TAG_STUB | 42));
        assert!(!StubEngine::owns_timer(42));
        assert!(!StubEngine::owns_timer(0x11 << 56));
    }
}
