#![warn(missing_docs)]

//! `dns-server` — DNS servers and resolvers over the simulator.
//!
//! This crate is the DNS half of the MEC-CDN reproduction. It provides:
//!
//! * [`zone::Zone`] — authoritative data with answers, CNAMEs, referrals
//!   (NS + glue) and negative answers.
//! * A CoreDNS-style **plugin chain** ([`plugin::Plugin`]): the paper's
//!   design §3 ("content mapping to MEC IP addresses can be achieved ...
//!   by using separate DNS plugins for handling the two namespaces
//!   differently") maps directly onto this. Included plugins:
//!   [`plugins::CachePlugin`], [`plugins::KubernetesPlugin`] (backed by
//!   the orchestrator's service registry, with split-horizon views),
//!   [`plugins::StubDomainPlugin`] (the CoreDNS stub-domain mechanism the
//!   prototype uses to hand the CDN zone to the Traffic Router),
//!   [`plugins::ForwardPlugin`] and [`plugins::AuthoritativePlugin`].
//! * [`server::DnsServer`] — a [`netsim::NodeBehavior`] that runs a
//!   plugin chain with a per-query processing-delay model, forwarding
//!   state, retries, and a full **iterative resolver** (root → TLD →
//!   authoritative, CNAME chasing, glue handling) for the
//!   [`plugins::RecursePlugin`].
//! * [`stub::StubEngine`] — the client side: unicast, multicast (the
//!   paper's "DNS requests be multicast to both MEC DNS and the
//!   network's L-DNS") and fallback-on-timeout strategies, with RTT
//!   measurement per query.
//! * EDNS Client Subnet end to end: stubs and forwarders can attach ECS,
//!   servers model its extra processing cost, and answers can be scoped.
//! * [`engine::ServeEngine`] — the same plugin chain behind a plain
//!   synchronous call for real transports: the `mecdnsd` binary decodes
//!   a UDP datagram, calls [`engine::ServeEngine::resolve`], and encodes
//!   the answer with `Message::encode_bounded` (TC-bit truncation to the
//!   client's payload budget).
//!
//! # Omitted (deliberately)
//!
//! * TCP fallback — truncated answers set the TC bit and rely on the
//!   client retrying; the serving path never emits a response beyond
//!   the client's advertised payload budget.
//! * DNSSEC — orthogonal to the latency argument of the paper.

pub mod cache;
pub mod engine;
pub mod plugin;
pub mod plugins;
pub mod server;
pub mod stub;
pub mod zone;

pub use cache::{CacheHit, DnsCache};
pub use engine::{RcodeCounts, ServeEngine};
pub use plugin::{Plugin, PluginDecision, QueryCtx};
pub use server::{DnsServer, ServerConfig};
pub use stub::{QueryOutcome, SendStrategy, StubEngine};
pub use zone::{LookupResult, Zone};
