//! A synchronous, transport-facing resolution engine.
//!
//! [`crate::server::DnsServer`] runs the plugin chain as a simulator
//! node: forwards become virtual datagrams, timeouts become virtual
//! timers. A real UDP server (the `mecdnsd` binary) needs the same
//! chain behind a plain function call instead: bytes in, a [`Message`]
//! out, no event loop. [`ServeEngine`] is that call. The paper's MEC
//! deployment co-locates the L-DNS and the C-DNS on one box, so the
//! "upstream" a front-chain [`PluginDecision::Forward`] names is served
//! by another in-process chain — no sockets, no retries, and cache
//! fills flow through the front chain's [`Plugin::on_response`] exactly
//! as they would for a wire response.
//!
//! The engine is on the resolution hot path (`hot-panic` / `hot-index`
//! apply): a malformed or hostile query must never panic the serving
//! thread.

use crate::plugin::{Plugin, PluginDecision, QueryCtx};
use dns_wire::{Message, Opt, Rcode};
use netsim::{SimTime, Telemetry};
use std::net::IpAddr;

/// Hops a query may take between in-process backends before the engine
/// declares a forwarding loop. Real deployments here are one hop
/// (L-DNS → C-DNS); the budget only guards against mis-wired configs.
const MAX_FORWARD_HOPS: usize = 4;

/// Responses tallied by rcode — the numbers behind the `--stats` line.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RcodeCounts {
    /// NOERROR responses.
    pub noerror: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
    /// SERVFAIL responses.
    pub servfail: u64,
    /// REFUSED responses.
    pub refused: u64,
    /// Everything else.
    pub other: u64,
}

impl RcodeCounts {
    fn count(&mut self, rcode: Rcode) {
        match rcode {
            Rcode::NoError => self.noerror += 1,
            Rcode::NxDomain => self.nxdomain += 1,
            Rcode::ServFail => self.servfail += 1,
            Rcode::Refused => self.refused += 1,
            _ => self.other += 1,
        }
    }

    /// Total responses across all rcodes.
    pub fn total(&self) -> u64 {
        self.noerror + self.nxdomain + self.servfail + self.refused + self.other
    }

    /// Folds another tally into this one (per-shard merge at shutdown).
    pub fn merge(&mut self, other: &RcodeCounts) {
        self.noerror += other.noerror;
        self.nxdomain += other.nxdomain;
        self.servfail += other.servfail;
        self.refused += other.refused;
        self.other += other.other;
    }
}

/// The plugin chains of one serving process: a front chain that faces
/// clients, plus backend chains addressable by the IPs front-chain
/// plugins forward to.
pub struct ServeEngine {
    front: Vec<Box<dyn Plugin>>,
    /// In-process "upstreams", looked up linearly — deployments here
    /// have one or two. Ordered, so behaviour never depends on map
    /// iteration order.
    backends: Vec<(IpAddr, Vec<Box<dyn Plugin>>)>,
    telemetry: Telemetry,
    /// Responses tallied by rcode.
    pub rcodes: RcodeCounts,
    /// Queries accepted into the chain.
    pub queries: u64,
    /// Queries dropped by a [`PluginDecision::Ignore`].
    pub ignored: u64,
}

impl ServeEngine {
    /// An engine with the given client-facing chain and no backends.
    pub fn new(front: Vec<Box<dyn Plugin>>) -> Self {
        ServeEngine {
            front,
            backends: Vec::new(),
            telemetry: Telemetry::default(),
            rcodes: RcodeCounts::default(),
            queries: 0,
            ignored: 0,
        }
    }

    /// Registers the chain that answers forwards addressed to `addr`.
    /// Builder-style; a later chain on the same address replaces the
    /// earlier one.
    pub fn with_backend(mut self, addr: IpAddr, chain: Vec<Box<dyn Plugin>>) -> Self {
        if let Some(slot) = self.backends.iter_mut().find(|(ip, _)| *ip == addr) {
            slot.1 = chain;
        } else {
            self.backends.push((addr, chain));
        }
        self
    }

    /// Routes the engine's counters into `t` (per-shard registries are
    /// merged at shutdown).
    pub fn with_telemetry(mut self, t: Telemetry) -> Self {
        self.telemetry = t;
        self
    }

    /// Immutable access to a front-chain plugin by index, downcast to
    /// its concrete type (test assertions on plugin-internal counters).
    pub fn front_plugin<P: Plugin + 'static>(&self, index: usize) -> Option<&P> {
        let p: &dyn Plugin = self.front.get(index)?.as_ref();
        (p as &dyn std::any::Any).downcast_ref::<P>()
    }

    /// Resolves one client query to the response that should go back on
    /// the wire, or `None` when a plugin chose to ignore it. `now` is
    /// whatever clock the transport runs on — virtual in tests, a
    /// wall-clock anchor in `mecdnsd` — and only feeds TTL bookkeeping.
    pub fn resolve(
        &mut self,
        now: SimTime,
        client: IpAddr,
        client_port: u16,
        query: &Message,
    ) -> Option<Message> {
        self.queries += 1;
        self.telemetry.incr("serve.query");
        let ctx = QueryCtx {
            now,
            client,
            client_port,
            telemetry: self.telemetry.clone(),
        };
        let mut decision = PluginDecision::Continue;
        for p in &mut self.front {
            decision = p.on_query(&ctx, query);
            if !matches!(decision, PluginDecision::Continue) {
                break;
            }
        }
        let mut response = match decision {
            PluginDecision::Respond(mut resp) => {
                resp.header.id = query.header.id;
                resp
            }
            PluginDecision::Forward { upstream } => self.forward(&ctx, query, upstream),
            PluginDecision::Recurse { .. } => {
                // Iterative recursion needs upstream sockets this
                // in-process engine does not own; the transport layer
                // would have to provide them. Until it does: SERVFAIL,
                // never silence.
                Message::response_to(query).with_rcode(Rcode::ServFail)
            }
            PluginDecision::Ignore => {
                self.ignored += 1;
                self.telemetry.incr("serve.ignore");
                return None;
            }
            PluginDecision::Continue => {
                // Off the end of the chain: refuse, like the simulator.
                Message::response_to(query).with_rcode(Rcode::Refused)
            }
        };
        // Echo the client's ECS option if the response does not already
        // scope itself (RFC 7871 §7.2.2).
        if response.edns.as_ref().and_then(|o| o.client_subnet()).is_none() {
            if let Some(cs) = query.client_subnet() {
                response.edns = Some(Opt::with_client_subnet(*cs));
            }
        }
        self.rcodes.count(response.header.rcode);
        self.telemetry.incr("serve.response");
        Some(response)
    }

    /// Dispatches a forward to the in-process backend chain at
    /// `upstream`, following chained forwards up to the hop budget. The
    /// backend's answer is shown to the front chain's `on_response`
    /// (cache fill) before it is returned.
    fn forward(&mut self, ctx: &QueryCtx, query: &Message, mut upstream: IpAddr) -> Message {
        for _ in 0..MAX_FORWARD_HOPS {
            let Some(chain) = self
                .backends
                .iter_mut()
                .find(|(ip, _)| *ip == upstream)
                .map(|(_, c)| c)
            else {
                // Nothing answers at that address: the upstream is dead
                // as far as this process is concerned. Tell the front
                // chain (health trackers) and fail the query.
                self.telemetry.incr("serve.upstream.unreachable");
                for p in &mut self.front {
                    p.on_upstream_event(ctx.now, upstream, false);
                }
                return Message::response_to(query).with_rcode(Rcode::ServFail);
            };
            let mut decision = PluginDecision::Continue;
            for p in chain.iter_mut() {
                decision = p.on_query(ctx, query);
                if !matches!(decision, PluginDecision::Continue) {
                    break;
                }
            }
            let mut resp = match decision {
                PluginDecision::Respond(resp) => resp,
                PluginDecision::Forward { upstream: next } => {
                    upstream = next;
                    continue;
                }
                PluginDecision::Ignore => {
                    // The backend dropped the query: to the front chain
                    // that is indistinguishable from a dead upstream.
                    self.telemetry.incr("serve.upstream.silent");
                    for p in &mut self.front {
                        p.on_upstream_event(ctx.now, upstream, false);
                    }
                    return Message::response_to(query).with_rcode(Rcode::ServFail);
                }
                PluginDecision::Recurse { .. } => {
                    Message::response_to(query).with_rcode(Rcode::ServFail)
                }
                PluginDecision::Continue => {
                    Message::response_to(query).with_rcode(Rcode::Refused)
                }
            };
            resp.header.id = query.header.id;
            resp.questions = query.questions.clone();
            self.telemetry.incr("serve.upstream.answer");
            for p in &mut self.front {
                p.on_upstream_event(ctx.now, upstream, true);
            }
            for p in &mut self.front {
                p.on_response(ctx, &mut resp);
            }
            return resp;
        }
        // Hop budget exhausted: a forwarding loop among the backends.
        self.telemetry.incr("serve.upstream.loop");
        Message::response_to(query).with_rcode(Rcode::ServFail)
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("front", &self.front.len())
            .field("backends", &self.backends.len())
            .field("queries", &self.queries)
            .field("rcodes", &self.rcodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugins::{AuthoritativePlugin, CachePlugin, StubDomainPlugin};
    use crate::zone::Zone;
    use dns_wire::{Name, RrType};
    use netsim::SimDuration;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 9));
    const CDNS: IpAddr = IpAddr::V4(Ipv4Addr::new(10, 96, 0, 53));

    /// Front: cache → stub to the backend; backend: authoritative zone.
    fn engine() -> ServeEngine {
        let mut zone = Zone::new(n("mycdn.ciab.test"));
        zone.add_a(n("video.mycdn.ciab.test"), Ipv4Addr::new(10, 96, 0, 10), 30);
        ServeEngine::new(vec![
            Box::new(CachePlugin::new(64)),
            Box::new(StubDomainPlugin::new(vec![(n("mycdn.ciab.test"), CDNS)])),
        ])
        .with_backend(CDNS, vec![Box::new(AuthoritativePlugin::new(vec![zone]))])
    }

    #[test]
    fn forward_is_answered_by_the_backend_chain() {
        let mut e = engine();
        let q = Message::query(7, n("video.mycdn.ciab.test"), RrType::A);
        let resp = e.resolve(at(0), CLIENT, 4000, &q).unwrap();
        assert_eq!(resp.header.id, 7);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.answer_a_addrs(), vec![Ipv4Addr::new(10, 96, 0, 10)]);
        assert_eq!(e.rcodes.noerror, 1);
    }

    #[test]
    fn backend_answer_fills_the_front_cache() {
        let mut e = engine();
        let q = Message::query(7, n("video.mycdn.ciab.test"), RrType::A);
        e.resolve(at(0), CLIENT, 4000, &q).unwrap();
        let again = Message::query(8, n("video.mycdn.ciab.test"), RrType::A);
        let resp = e.resolve(at(1), CLIENT, 4000, &again).unwrap();
        assert_eq!(resp.header.id, 8);
        assert_eq!(resp.answer_a_addrs(), vec![Ipv4Addr::new(10, 96, 0, 10)]);
        let cache = e.front_plugin::<CachePlugin>(0).unwrap();
        assert_eq!(cache.hits(), 1, "second query must be a cache hit");
    }

    #[test]
    fn unknown_upstream_servfails() {
        let mut e = ServeEngine::new(vec![Box::new(StubDomainPlugin::new(vec![(
            n("mycdn.ciab.test"),
            CDNS,
        )]))]);
        let q = Message::query(9, n("video.mycdn.ciab.test"), RrType::A);
        let resp = e.resolve(at(0), CLIENT, 4000, &q).unwrap();
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert_eq!(e.rcodes.servfail, 1);
    }

    #[test]
    fn off_chain_end_refuses() {
        let mut e = ServeEngine::new(vec![]);
        let q = Message::query(3, n("elsewhere.test"), RrType::A);
        let resp = e.resolve(at(0), CLIENT, 4000, &q).unwrap();
        assert_eq!(resp.header.rcode, Rcode::Refused);
        assert_eq!(e.rcodes.refused, 1);
    }

    #[test]
    fn nxdomain_from_backend_is_relayed_and_counted() {
        let mut e = engine();
        let q = Message::query(4, n("missing.mycdn.ciab.test"), RrType::A);
        let resp = e.resolve(at(0), CLIENT, 4000, &q).unwrap();
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert_eq!(e.rcodes.nxdomain, 1);
    }

    #[test]
    fn forwarding_loop_hits_the_hop_budget() {
        struct Bounce(IpAddr);
        impl Plugin for Bounce {
            fn name(&self) -> &'static str {
                "bounce"
            }
            fn on_query(&mut self, _ctx: &QueryCtx, _q: &Message) -> PluginDecision {
                PluginDecision::Forward { upstream: self.0 }
            }
        }
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        let mut e = ServeEngine::new(vec![Box::new(Bounce(a))])
            .with_backend(a, vec![Box::new(Bounce(b))])
            .with_backend(b, vec![Box::new(Bounce(a))]);
        let q = Message::query(5, n("loop.test"), RrType::A);
        let resp = e.resolve(at(0), CLIENT, 4000, &q).unwrap();
        assert_eq!(resp.header.rcode, Rcode::ServFail);
    }

    #[test]
    fn ecs_option_is_echoed_back() {
        let mut e = engine();
        let ecs = dns_wire::ClientSubnet::query("172.16.0.0".parse().unwrap(), 12);
        let q = Message::query(6, n("video.mycdn.ciab.test"), RrType::A)
            .with_client_subnet(ecs);
        let resp = e.resolve(at(0), CLIENT, 4000, &q).unwrap();
        assert_eq!(resp.client_subnet(), Some(&ecs));
    }

    #[test]
    fn rcode_counts_merge() {
        let mut a = RcodeCounts {
            noerror: 3,
            nxdomain: 1,
            ..RcodeCounts::default()
        };
        let b = RcodeCounts {
            noerror: 2,
            servfail: 5,
            refused: 1,
            other: 2,
            ..RcodeCounts::default()
        };
        a.merge(&b);
        assert_eq!(a.noerror, 5);
        assert_eq!(a.servfail, 5);
        assert_eq!(a.total(), 14);
    }
}
