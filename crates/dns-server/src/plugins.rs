//! Built-in plugins: authoritative zones, cache, kubernetes registry,
//! stub domains, forwarding and recursion.

use crate::cache::DnsCache;
use crate::plugin::{Plugin, PluginDecision, QueryCtx};
use crate::zone::{LookupResult, Zone};
use dns_wire::{Message, Name, NameId, RData, Rcode, Record, RrClass, RrType};
use mec_orch::{ServiceRegistry, Visibility};
use netsim::{Cidr, SimTime};
use std::collections::HashMap;
use std::net::IpAddr;

/// Serves one or more authoritative zones — the root, TLD and A-DNS
/// servers of Figure 1 are all instances of this plugin over different
/// zone data.
pub struct AuthoritativePlugin {
    zones: Vec<Zone>,
    /// Negative-answer TTL (stands in for the SOA minimum).
    pub negative_ttl: u32,
}

impl AuthoritativePlugin {
    /// Serves the given zones.
    pub fn new(zones: Vec<Zone>) -> Self {
        AuthoritativePlugin {
            zones,
            negative_ttl: 30,
        }
    }

    /// The most specific zone containing `name`, if any.
    fn zone_for(&self, name: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| name.is_subdomain_of(z.apex()))
            .max_by_key(|z| z.apex().label_count())
    }
}

impl Plugin for AuthoritativePlugin {
    fn name(&self) -> &'static str {
        "authoritative"
    }

    fn on_query(&mut self, _ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let Some(q) = query.question() else {
            return PluginDecision::Respond(
                Message::response_to(query).with_rcode(Rcode::FormErr),
            );
        };
        let Some(zone) = self.zone_for(&q.qname) else {
            return PluginDecision::Continue;
        };
        let mut resp = Message::response_to(query);
        resp.header.authoritative = true;
        match zone.lookup(&q.qname, q.qtype) {
            LookupResult::Answer(records) => {
                resp.answers = records;
            }
            LookupResult::Referral { ns, glue } => {
                resp.header.authoritative = false;
                resp.authorities = ns;
                resp.additionals = glue;
            }
            LookupResult::NoData => {}
            LookupResult::NxDomain => {
                resp.header.rcode = Rcode::NxDomain;
            }
            LookupResult::NotAuthoritative => return PluginDecision::Continue,
        }
        PluginDecision::Respond(resp)
    }
}

/// TTL/LRU answer cache. Consult first; fills from upstream responses.
pub struct CachePlugin {
    cache: DnsCache,
}

impl CachePlugin {
    /// A cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        CachePlugin {
            cache: DnsCache::new(capacity),
        }
    }

    /// Cache hit count (for tests and ablations).
    pub fn hits(&self) -> u64 {
        self.cache.hits
    }

    /// Cache miss count.
    pub fn misses(&self) -> u64 {
        self.cache.misses
    }
}

impl Plugin for CachePlugin {
    fn name(&self) -> &'static str {
        "cache"
    }

    fn on_query(&mut self, ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let Some(q) = query.question() else {
            return PluginDecision::Continue;
        };
        match self.cache.get(&q.qname, q.qtype, ctx.now) {
            Some((records, rcode)) => {
                ctx.telemetry.incr("dns.cache.hit");
                ctx.telemetry.mark(
                    u64::from(query.header.id),
                    ctx.now,
                    "cache.hit",
                    q.qname.canonical(),
                );
                let mut resp = Message::response_to(query).with_rcode(rcode);
                resp.answers = records;
                resp.header.recursion_available = true;
                PluginDecision::Respond(resp)
            }
            None => {
                ctx.telemetry.incr("dns.cache.miss");
                PluginDecision::Continue
            }
        }
    }

    fn on_response(&mut self, ctx: &QueryCtx, response: &mut Message) {
        let Some(q) = response.question().cloned() else {
            return;
        };
        if response.header.rcode == Rcode::NoError && !response.answers.is_empty() {
            self.cache
                .insert(&q.qname, q.qtype, response.answers.clone(), ctx.now);
        } else if response.header.rcode == Rcode::NxDomain {
            self.cache
                .insert_negative(&q.qname, q.qtype, Rcode::NxDomain, 30, ctx.now);
        }
    }
}

/// Serves names from the orchestrator's service registry — the CoreDNS
/// `kubernetes` plugin. The visibility view is chosen per query: clients
/// inside `internal_cidrs` see internal VNF names, everyone else sees
/// only the public MEC-CDN namespace (the split-namespace design of §3).
pub struct KubernetesPlugin {
    registry: ServiceRegistry,
    /// Zones this plugin is authoritative for (e.g. `cluster.local` and
    /// the MEC-CDN public domain).
    zones: Vec<Name>,
    /// Clients within these prefixes get the internal view.
    internal_cidrs: Vec<Cidr>,
    /// TTL on served records (CoreDNS default is 5 s).
    pub ttl: u32,
}

impl KubernetesPlugin {
    /// Serves `zones` from `registry`.
    pub fn new(registry: ServiceRegistry, zones: Vec<Name>, internal_cidrs: Vec<Cidr>) -> Self {
        KubernetesPlugin {
            registry,
            zones,
            internal_cidrs,
            ttl: 5,
        }
    }

    fn view_for(&self, client: IpAddr) -> Visibility {
        if self.internal_cidrs.iter().any(|c| c.contains(client)) {
            Visibility::Internal
        } else {
            Visibility::Public
        }
    }
}

impl Plugin for KubernetesPlugin {
    fn name(&self) -> &'static str {
        "kubernetes"
    }

    fn on_query(&mut self, ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let Some(q) = query.question() else {
            return PluginDecision::Continue;
        };
        if !self.zones.iter().any(|z| q.qname.is_subdomain_of(z)) {
            return PluginDecision::Continue;
        }
        let view = self.view_for(ctx.client);
        let mut resp = Message::response_to(query);
        resp.header.authoritative = true;
        match self.registry.lookup(&q.qname.to_string(), view) {
            Some(IpAddr::V4(addr)) if q.qtype == RrType::A => {
                resp.answers.push(Record::new(
                    q.qname.clone(),
                    RrClass::In,
                    self.ttl,
                    RData::A(addr),
                ));
            }
            Some(IpAddr::V6(addr)) if q.qtype == RrType::Aaaa => {
                resp.answers.push(Record::new(
                    q.qname.clone(),
                    RrClass::In,
                    self.ttl,
                    RData::Aaaa(addr),
                ));
            }
            Some(_) => {} // name exists, wrong type: NoData
            None => {
                resp.header.rcode = Rcode::NxDomain;
            }
        }
        PluginDecision::Respond(resp)
    }
}

/// Redirects zones to specific upstream servers — the CoreDNS
/// stub-domain mechanism the prototype uses: *"we update the
/// configuration of L-DNS with the sub-domain and upstream server to
/// ensure that L-DNS redirects queries for this CDN domain to C-DNS."*
pub struct StubDomainPlugin {
    /// Interned stub zone → upstream. Matching walks the query name's
    /// parent chain in id space instead of scanning every stub with a
    /// string-comparing `is_subdomain_of`.
    stubs: HashMap<NameId, IpAddr>,
}

impl StubDomainPlugin {
    /// Creates the plugin from (zone, upstream) pairs.
    pub fn new(pairs: Vec<(Name, IpAddr)>) -> Self {
        let mut map = HashMap::new();
        for (zone, upstream) in pairs {
            // Later duplicates win, matching the old `max_by_key` scan.
            map.insert(zone.id(), upstream);
        }
        StubDomainPlugin { stubs: map }
    }
}

impl Plugin for StubDomainPlugin {
    fn name(&self) -> &'static str {
        "stub-domain"
    }

    fn on_query(&mut self, ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let Some(q) = query.question() else {
            return PluginDecision::Continue;
        };
        // Most specific stub wins: the first hit walking from the query
        // name toward the root.
        let mut best = None;
        let mut cur = Some(q.qname.id());
        while let Some(id) = cur {
            if let Some(&upstream) = self.stubs.get(&id) {
                best = Some(upstream);
                break;
            }
            cur = id.parent();
        }
        match best {
            Some(upstream) => {
                ctx.telemetry.incr("dns.stub_domain.redirect");
                ctx.telemetry.mark(
                    u64::from(query.header.id),
                    ctx.now,
                    "stub_domain.redirect",
                    upstream.to_string(),
                );
                PluginDecision::Forward { upstream }
            }
            None => PluginDecision::Continue,
        }
    }
}

/// Health state of one forward upstream.
#[derive(Debug, Clone, Copy)]
struct UpstreamHealth {
    addr: IpAddr,
    /// Silent failures in a row; an answer resets it.
    consecutive_failures: u32,
    /// While set and in the future, the upstream is skipped.
    unhealthy_until: Option<SimTime>,
}

impl UpstreamHealth {
    fn new(addr: IpAddr) -> Self {
        UpstreamHealth {
            addr,
            consecutive_failures: 0,
            unhealthy_until: None,
        }
    }

    fn healthy(&self, now: SimTime) -> bool {
        match self.unhealthy_until {
            Some(until) => now >= until,
            None => true,
        }
    }
}

/// Forwards everything to an upstream resolver (the CoreDNS `forward`
/// plugin) — how a MEC L-DNS hands non-MEC names to the provider's
/// resolver.
///
/// With [`ForwardPlugin::with_secondary`], the plugin tracks each
/// upstream's health from the server's upstream events (see
/// [`Plugin::on_upstream_event`]): after
/// [`ForwardPlugin::failure_threshold`] consecutive silent failures an
/// upstream is held down for [`ForwardPlugin::hold_down`] and queries
/// deterministically fail over to the first healthy upstream in
/// declaration order. When every upstream is held down the primary is
/// used anyway (there is nothing better to try), which also probes it
/// for recovery once the hold-down lapses.
pub struct ForwardPlugin {
    upstreams: Vec<UpstreamHealth>,
    /// Consecutive silent failures before an upstream is held down.
    pub failure_threshold: u32,
    /// How long a tripped upstream is skipped before it is probed again.
    pub hold_down: netsim::SimDuration,
}

impl ForwardPlugin {
    /// Forwards to `upstream`.
    pub fn new(upstream: IpAddr) -> Self {
        ForwardPlugin {
            upstreams: vec![UpstreamHealth::new(upstream)],
            failure_threshold: 2,
            hold_down: netsim::SimDuration::from_secs(5),
        }
    }

    /// Adds a lower-priority upstream to fail over to (builder style).
    pub fn with_secondary(mut self, upstream: IpAddr) -> Self {
        self.upstreams.push(UpstreamHealth::new(upstream));
        self
    }

    /// The upstream a query issued at `now` would be forwarded to.
    pub fn active_upstream(&self, now: SimTime) -> IpAddr {
        self.upstreams
            .iter()
            .find(|u| u.healthy(now))
            // detlint: allow(hot-index) — constructors seed `upstreams`
            // with one entry and it only ever grows, so index 0 exists.
            .unwrap_or(&self.upstreams[0])
            .addr
    }
}

impl Plugin for ForwardPlugin {
    fn name(&self) -> &'static str {
        "forward"
    }

    fn on_query(&mut self, ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let upstream = self.active_upstream(ctx.now);
        if self.upstreams.first().is_some_and(|u0| upstream != u0.addr) {
            ctx.telemetry.incr("dns.forward.failover");
            ctx.telemetry.mark(
                u64::from(query.header.id),
                ctx.now,
                "forward.failover",
                upstream.to_string(),
            );
        }
        PluginDecision::Forward { upstream }
    }

    fn on_upstream_event(&mut self, now: SimTime, upstream: IpAddr, ok: bool) {
        let threshold = self.failure_threshold;
        let hold_down = self.hold_down;
        let Some(u) = self.upstreams.iter_mut().find(|u| u.addr == upstream) else {
            return;
        };
        if ok {
            u.consecutive_failures = 0;
            u.unhealthy_until = None;
        } else {
            u.consecutive_failures += 1;
            if u.consecutive_failures >= threshold {
                u.unhealthy_until = Some(now + hold_down);
            }
        }
    }
}

/// Full iterative resolution from root hints — what the provider L-DNS,
/// Google DNS and Cloudflare DNS deployments in Figure 5 do.
pub struct RecursePlugin {
    roots: Vec<IpAddr>,
}

impl RecursePlugin {
    /// Recurse starting from these root servers.
    pub fn new(roots: Vec<IpAddr>) -> Self {
        assert!(!roots.is_empty(), "recursion needs at least one root hint");
        RecursePlugin { roots }
    }
}

impl Plugin for RecursePlugin {
    fn name(&self) -> &'static str {
        "recurse"
    }

    fn on_query(&mut self, _ctx: &QueryCtx, _query: &Message) -> PluginDecision {
        PluginDecision::Recurse {
            roots: self.roots.clone(),
        }
    }
}

/// Drops queries outside the given zones — the access-control half of
/// the "MEC DNS ignores queries not related to MEC-CDN" workaround. Put
/// it *after* the plugins that should answer and before any forwarder
/// you do not want non-MEC traffic to reach.
pub struct ScopePlugin {
    zones: Vec<Name>,
}

impl ScopePlugin {
    /// Ignore queries for names outside `zones`.
    pub fn new(zones: Vec<Name>) -> Self {
        ScopePlugin { zones }
    }
}

impl Plugin for ScopePlugin {
    fn name(&self) -> &'static str {
        "scope"
    }

    fn on_query(&mut self, _ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let Some(q) = query.question() else {
            return PluginDecision::Ignore;
        };
        if self.zones.iter().any(|z| q.qname.is_subdomain_of(z)) {
            PluginDecision::Continue
        } else {
            PluginDecision::Ignore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ctx() -> QueryCtx {
        QueryCtx {
            now: SimTime::ZERO,
            client: "192.168.1.50".parse().unwrap(),
            client_port: 40000,
            telemetry: netsim::Telemetry::default(),
        }
    }

    fn internal_ctx() -> QueryCtx {
        QueryCtx {
            client: "10.244.0.7".parse().unwrap(),
            ..ctx()
        }
    }

    fn q(name: &str) -> Message {
        Message::query(7, n(name), RrType::A)
    }

    #[test]
    fn authoritative_answers_and_falls_through() {
        let mut zone = Zone::new(n("mycdn.ciab.test"));
        zone.add_a(n("c.mycdn.ciab.test"), Ipv4Addr::new(1, 2, 3, 4), 30);
        let mut p = AuthoritativePlugin::new(vec![zone]);
        match p.on_query(&ctx(), &q("c.mycdn.ciab.test")) {
            PluginDecision::Respond(r) => {
                assert!(r.header.authoritative);
                assert_eq!(r.answer_a_addrs(), vec![Ipv4Addr::new(1, 2, 3, 4)]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            p.on_query(&ctx(), &q("other.example")),
            PluginDecision::Continue
        ));
    }

    #[test]
    fn authoritative_nxdomain() {
        let zone = Zone::new(n("mycdn.ciab.test"));
        let mut p = AuthoritativePlugin::new(vec![zone]);
        match p.on_query(&ctx(), &q("missing.mycdn.ciab.test")) {
            PluginDecision::Respond(r) => assert_eq!(r.header.rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn most_specific_zone_wins() {
        let mut parent = Zone::new(n("test"));
        parent.add_a(n("x.sub.test"), Ipv4Addr::new(9, 9, 9, 9), 30);
        let mut child = Zone::new(n("sub.test"));
        child.add_a(n("x.sub.test"), Ipv4Addr::new(1, 1, 1, 1), 30);
        let mut p = AuthoritativePlugin::new(vec![parent, child]);
        match p.on_query(&ctx(), &q("x.sub.test")) {
            PluginDecision::Respond(r) => {
                assert_eq!(r.answer_a_addrs(), vec![Ipv4Addr::new(1, 1, 1, 1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_fills_from_responses_and_serves_hits() {
        let mut p = CachePlugin::new(16);
        assert!(matches!(
            p.on_query(&ctx(), &q("a.test")),
            PluginDecision::Continue
        ));
        let mut resp = Message::response_to(&q("a.test"));
        resp.answers.push(Record::new(
            n("a.test"),
            RrClass::In,
            30,
            RData::A(Ipv4Addr::new(5, 5, 5, 5)),
        ));
        p.on_response(&ctx(), &mut resp);
        match p.on_query(&ctx(), &q("a.test")) {
            PluginDecision::Respond(r) => {
                assert_eq!(r.answer_a_addrs(), vec![Ipv4Addr::new(5, 5, 5, 5)]);
                assert!(r.header.recursion_available);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.hits(), 1);
    }

    #[test]
    fn cache_negative_answers() {
        let mut p = CachePlugin::new(16);
        let mut resp = Message::response_to(&q("gone.test")).with_rcode(Rcode::NxDomain);
        p.on_response(&ctx(), &mut resp);
        match p.on_query(&ctx(), &q("gone.test")) {
            PluginDecision::Respond(r) => assert_eq!(r.header.rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kubernetes_split_horizon() {
        let reg = ServiceRegistry::new();
        reg.upsert(
            "video.mycdn.ciab.test",
            "10.96.0.5".parse().unwrap(),
            Visibility::Public,
        );
        reg.upsert(
            "mme.epc.svc.cluster.local",
            "10.96.0.2".parse().unwrap(),
            Visibility::Internal,
        );
        let mut p = KubernetesPlugin::new(
            reg,
            vec![n("cluster.local"), n("mycdn.ciab.test")],
            vec!["10.244.0.0/16".parse().unwrap()],
        );
        // Public client resolves the CDN name…
        match p.on_query(&ctx(), &q("video.mycdn.ciab.test")) {
            PluginDecision::Respond(r) => {
                assert_eq!(r.answer_a_addrs(), vec![Ipv4Addr::new(10, 96, 0, 5)]);
                assert_eq!(r.answers[0].ttl, 5);
            }
            other => panic!("{other:?}"),
        }
        // …but not the internal VNF name.
        match p.on_query(&ctx(), &q("mme.epc.svc.cluster.local")) {
            PluginDecision::Respond(r) => assert_eq!(r.header.rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
        // A pod sees the internal name.
        match p.on_query(&internal_ctx(), &q("mme.epc.svc.cluster.local")) {
            PluginDecision::Respond(r) => {
                assert_eq!(r.answer_a_addrs(), vec![Ipv4Addr::new(10, 96, 0, 2)])
            }
            other => panic!("{other:?}"),
        }
        // Names outside its zones fall through.
        assert!(matches!(
            p.on_query(&ctx(), &q("www.google.com")),
            PluginDecision::Continue
        ));
    }

    #[test]
    fn stub_domain_picks_most_specific() {
        let mut p = StubDomainPlugin::new(vec![
            (n("ciab.test"), "10.0.0.1".parse().unwrap()),
            (n("mycdn.ciab.test"), "10.96.0.9".parse().unwrap()),
        ]);
        match p.on_query(&ctx(), &q("video.demo1.mycdn.ciab.test")) {
            PluginDecision::Forward { upstream } => {
                assert_eq!(upstream, "10.96.0.9".parse::<IpAddr>().unwrap());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            p.on_query(&ctx(), &q("www.example.com")),
            PluginDecision::Continue
        ));
    }

    #[test]
    fn forward_always_forwards() {
        let mut p = ForwardPlugin::new("8.8.8.8".parse().unwrap());
        assert!(matches!(
            p.on_query(&ctx(), &q("anything.at.all")),
            PluginDecision::Forward { .. }
        ));
    }

    #[test]
    fn forward_fails_over_after_threshold_and_recovers() {
        use netsim::{SimDuration, SimTime};
        let primary: IpAddr = "8.8.8.8".parse().unwrap();
        let secondary: IpAddr = "1.1.1.1".parse().unwrap();
        let mut p = ForwardPlugin::new(primary).with_secondary(secondary);
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        assert_eq!(p.active_upstream(t(0)), primary);
        // One silent failure is not enough (threshold 2).
        p.on_upstream_event(t(1), primary, false);
        assert_eq!(p.active_upstream(t(1)), primary);
        p.on_upstream_event(t(2), primary, false);
        assert_eq!(p.active_upstream(t(2)), secondary, "held down");
        // Hold-down (5 s) lapses: the primary is probed again.
        assert_eq!(p.active_upstream(t(7)), primary);
        // An answer clears the failure streak entirely.
        p.on_upstream_event(t(7), primary, true);
        p.on_upstream_event(t(8), primary, false);
        assert_eq!(p.active_upstream(t(8)), primary);
        // Events for servers we do not forward to are ignored.
        p.on_upstream_event(t(8), "9.9.9.9".parse().unwrap(), false);
        assert_eq!(p.active_upstream(t(8)), primary);
    }

    #[test]
    fn forward_with_all_upstreams_down_uses_the_primary() {
        use netsim::{SimDuration, SimTime};
        let primary: IpAddr = "8.8.8.8".parse().unwrap();
        let secondary: IpAddr = "1.1.1.1".parse().unwrap();
        let mut p = ForwardPlugin::new(primary).with_secondary(secondary);
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        for i in 0..2 {
            p.on_upstream_event(t(i), primary, false);
            p.on_upstream_event(t(i), secondary, false);
        }
        assert_eq!(p.active_upstream(t(2)), primary, "nothing better to try");
    }

    #[test]
    fn scope_ignores_foreign_names() {
        let mut p = ScopePlugin::new(vec![n("mycdn.ciab.test")]);
        assert!(matches!(
            p.on_query(&ctx(), &q("video.mycdn.ciab.test")),
            PluginDecision::Continue
        ));
        assert!(matches!(
            p.on_query(&ctx(), &q("www.google.com")),
            PluginDecision::Ignore
        ));
    }

    #[test]
    #[should_panic(expected = "root hint")]
    fn recurse_requires_roots() {
        RecursePlugin::new(vec![]);
    }
}
