//! A TTL-honouring, capacity-bounded DNS cache.
//!
//! The paper's Figure 2 analysis leans on caching behaviour: *"for
//! popular websites' CDN domains, the A records TTL never expires at
//! L-DNS and the cached A records are used for lookup"* — which is why
//! step 2 (the A-DNS CNAME lookup) never appears in their measurements.
//! This cache reproduces that: positive and negative entries with
//! absolute expiry in virtual time, TTL decay on read, and LRU eviction
//! at capacity.
//!
//! # Internals
//!
//! The steady-state hit path allocates nothing:
//!
//! * Keys are interned `(NameId, qtype)` pairs — no `canonical()`
//!   strings. Lookups probe the interner without growing it, so a miss
//!   for a never-seen name is allocation-free too.
//! * Entries live in a slab (`Vec<Slot>` + free list) threaded onto an
//!   index-based doubly-linked LRU list (head = most recent); eviction
//!   pops the tail in O(1) instead of scanning the map for the minimum
//!   `last_used`.
//! * Expired entries are purged via a min-expiry binary heap with lazy
//!   invalidation (per-slot generation stamps), replacing the old
//!   full-map `retain` at capacity inserts with amortized O(log n) work
//!   per entry.
//! * Answers are shared `Arc<[Record]>` sets; TTL decay is applied when
//!   the answer is serialized into a response, not by deep-cloning the
//!   record vector inside the cache.
//!
//! The pre-interning implementation is preserved as [`naive::DnsCache`]
//! (tests and the `bench-naive` feature only) so the equivalence suite
//! and the `cache_churn` benchmark can drive both side by side.

use dns_wire::{Name, NameId, Rcode, Record, RrType};
use netsim::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, OnceLock};

/// Null index in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One second in `SimTime` nanoseconds: the smallest remaining lifetime
/// an entry can be served with. Anything below truncates to TTL 0 on
/// the wire, which downstream caches treat as uncacheable, so both
/// cache implementations expire such entries on lookup instead.
const NANOS_PER_SEC: u64 = 1_000_000_000;

#[derive(Debug, Clone)]
struct Slot {
    key: (NameId, u16),
    records: Arc<[Record]>,
    rcode: Rcode,
    expires: SimTime,
    /// LRU list neighbours (`NIL`-terminated; head is most recent).
    prev: u32,
    next: u32,
    /// Generation stamp; bumped on every content change or release so
    /// stale expiry-heap nodes can be recognised and discarded.
    stamp: u64,
    live: bool,
}

/// Slab of cache slots threaded onto an index-based doubly-linked LRU
/// list. Index-based (no `unsafe`, no pointer juggling): `u32` slot
/// indices are the links.
#[derive(Debug, Default)]
struct Store {
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

// detlint: allow-item(hot-index) — slot indices are minted by `alloc`
// from `slots.len()` and recycled through `free`; slots are never
// removed, so every stored index stays in bounds for the slab's life.
impl Store {
    fn new() -> Self {
        Store {
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn alloc(
        &mut self,
        key: (NameId, u16),
        records: Arc<[Record]>,
        rcode: Rcode,
        expires: SimTime,
    ) -> u32 {
        match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.key = key;
                s.records = records;
                s.rcode = rcode;
                s.expires = expires;
                s.prev = NIL;
                s.next = NIL;
                s.live = true;
                i
            }
            None => {
                // detlint: allow(hot-panic) — 2^32 live cache slots exceeds
                // any configured capacity by orders of magnitude; abort on
                // the impossible rather than wrap an index.
                let i = u32::try_from(self.slots.len()).expect("cache slab overflow");
                self.slots.push(Slot {
                    key,
                    records,
                    rcode,
                    expires,
                    prev: NIL,
                    next: NIL,
                    stamp: 0,
                    live: true,
                });
                i
            }
        }
    }

    /// Unlinks `i` from the LRU list (no-op links afterwards).
    fn detach(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        let s = &mut self.slots[i as usize];
        s.prev = NIL;
        s.next = NIL;
    }

    /// Links a detached `i` at the head (most recently used).
    fn push_front(&mut self, i: u32) {
        let old = self.head;
        self.slots[i as usize].next = old;
        if old == NIL {
            self.tail = i;
        } else {
            self.slots[old as usize].prev = i;
        }
        self.head = i;
    }

    /// Marks a detached slot dead and returns it to the free list. The
    /// record set is dropped here (the `Arc` may live on in responses).
    fn release(&mut self, i: u32) {
        let s = &mut self.slots[i as usize];
        s.live = false;
        s.stamp += 1;
        // One process-wide empty set: eviction runs on the lookup path
        // (expired entries are removed by the probe that finds them), so
        // it must not allocate a fresh Arc per release.
        s.records = empty_records();
        self.free.push(i);
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// The shared empty record set dead slots point at. Initialized once;
/// every later call is a refcount bump.
fn empty_records() -> Arc<[Record]> {
    static EMPTY: OnceLock<Arc<[Record]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| {
        // detlint: allow(hot-alloc) — one-time initialization of the
        // process-wide empty set; steady-state calls never enter this
        // closure.
        let none: Vec<Record> = Vec::new();
        // detlint: allow(hot-alloc) — same one-time initialization: the
        // Arc control block is allocated exactly once per process.
        Arc::from(none)
    }))
}

/// A borrowed-nothing cache hit: the shared record set, the response
/// code, and the (truncated) seconds of life the entry has left. TTL
/// decay is applied by the consumer at serialization time via
/// [`CacheHit::decayed_records`].
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// Shared answer set, exactly as inserted (original TTLs).
    pub records: Arc<[Record]>,
    /// `NoError` for positive entries, the cached rcode otherwise.
    pub rcode: Rcode,
    /// Whole seconds until expiry, truncated — never 0: a lookup that
    /// finds an entry inside its final second expires it instead of
    /// serving an answer downstream caches would treat as uncacheable.
    pub remaining_ttl: u32,
}

impl CacheHit {
    /// The records with TTLs clamped to the remaining lifetime — what a
    /// response serializer should emit.
    // detlint: allow-item(hot-alloc) — this is the *compat* consumption
    // of a hit: it deliberately clones records to decay their TTLs. The
    // zero-alloc path returns the shared `records` untouched and decays
    // at serialization time.
    pub fn decayed_records(&self) -> impl Iterator<Item = Record> + '_ {
        self.records.iter().map(move |r| {
            let mut r = r.clone();
            // Serve the truncated remaining lifetime as-is: truncation
            // (never rounding up) keeps downstream caches from outliving
            // the authoritative expiry, and the lookup already expired
            // anything with less than a whole second left, so this is
            // always ≥ 1 for a hit.
            r.ttl = r.ttl.min(self.remaining_ttl);
            r
        })
    }
}

/// TTL + LRU cache for DNS answers.
#[derive(Debug)]
pub struct DnsCache {
    /// `(interned name, qtype)` → slot index.
    index: HashMap<(NameId, u16), u32>,
    store: Store,
    /// Min-heap of `(expires, slot, stamp)`; stale nodes are discarded
    /// lazily when their stamp no longer matches the slot.
    expiry: BinaryHeap<Reverse<(SimTime, u32, u64)>>,
    capacity: usize,
    /// Cache hits served.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
}

// detlint: allow-item(hot-index) — indices reaching `store.slots` come
// from the `index` map or the intrusive LRU links, both maintained in
// lock-step with the slab (see `Store`); they cannot dangle.
impl DnsCache {
    /// A cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        DnsCache {
            index: HashMap::new(),
            store: Store::new(),
            expiry: BinaryHeap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of live entries (including expired but not yet evicted).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Stores a positive answer. The entry TTL is the smallest record
    /// TTL, so no record is ever served beyond its own lifetime.
    pub fn insert(&mut self, name: &Name, qtype: RrType, records: Vec<Record>, now: SimTime) {
        if records.is_empty() {
            return;
        }
        let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        if min_ttl == 0 {
            return; // TTL 0 forbids caching
        }
        self.insert_entry(
            (name.id(), qtype.to_u16()),
            records.into(),
            Rcode::NoError,
            now + SimDuration::from_secs(u64::from(min_ttl)),
            now,
        );
    }

    /// Stores a negative answer (NXDOMAIN / NoData) for `ttl` — RFC 2308
    /// negative caching, with the TTL taken from the zone's SOA minimum
    /// by the caller.
    pub fn insert_negative(
        &mut self,
        name: &Name,
        qtype: RrType,
        rcode: Rcode,
        ttl: u32,
        now: SimTime,
    ) {
        if ttl == 0 {
            return;
        }
        self.insert_entry(
            (name.id(), qtype.to_u16()),
            Arc::from(Vec::new()),
            rcode,
            now + SimDuration::from_secs(u64::from(ttl)),
            now,
        );
    }

    fn insert_entry(
        &mut self,
        key: (NameId, u16),
        records: Arc<[Record]>,
        rcode: Rcode,
        expires: SimTime,
        now: SimTime,
    ) {
        if self.index.len() >= self.capacity && !self.index.contains_key(&key) {
            // Expired entries are dead weight: drop them all first, and
            // only fall back to evicting the live LRU tail if the cache
            // is still full.
            self.purge_expired(now);
            if self.index.len() >= self.capacity {
                let victim = self.store.tail;
                debug_assert_ne!(victim, NIL, "full cache must have a tail");
                self.remove_slot(victim);
            }
        }
        match self.index.entry(key) {
            MapEntry::Occupied(e) => {
                let i = *e.get();
                let s = &mut self.store.slots[i as usize];
                s.records = records;
                s.rcode = rcode;
                s.expires = expires;
                s.stamp += 1;
                let stamp = s.stamp;
                self.store.detach(i);
                self.store.push_front(i);
                self.expiry.push(Reverse((expires, i, stamp)));
            }
            MapEntry::Vacant(v) => {
                let i = self.store.alloc(key, records, rcode, expires);
                v.insert(i);
                self.store.push_front(i);
                let stamp = self.store.slots[i as usize].stamp;
                self.expiry.push(Reverse((expires, i, stamp)));
            }
        }
    }

    /// Removes every entry with `expires <= now`, driven by the expiry
    /// heap instead of a full-map scan.
    fn purge_expired(&mut self, now: SimTime) {
        while let Some(&Reverse((expires, i, stamp))) = self.expiry.peek() {
            if expires > now {
                break;
            }
            self.expiry.pop();
            let s = &self.store.slots[i as usize];
            if s.live && s.stamp == stamp {
                self.remove_slot(i);
            }
        }
    }

    fn remove_slot(&mut self, i: u32) {
        let key = self.store.slots[i as usize].key;
        let removed = self.index.remove(&key);
        debug_assert_eq!(removed, Some(i), "index and slab out of sync");
        self.store.detach(i);
        self.store.release(i);
    }

    /// Looks up an answer without cloning it: on a hit, the shared
    /// record set plus the remaining lifetime. Expired entries — and
    /// entries inside their final second, whose truncated TTL would be
    /// 0 and therefore uncacheable downstream — are removed in the same
    /// (single) map probe. This is the steady-state zero-allocation path.
    pub fn get_shared(&mut self, name: &Name, qtype: RrType, now: SimTime) -> Option<CacheHit> {
        let Some(id) = name.lookup_id() else {
            // Never-interned name: nothing was ever stored under it.
            self.misses += 1;
            return None;
        };
        match self.index.entry((id, qtype.to_u16())) {
            MapEntry::Occupied(e) => {
                let i = *e.get();
                let s = &mut self.store.slots[i as usize];
                let remaining_ns = s.expires.as_nanos().saturating_sub(now.as_nanos());
                if remaining_ns >= NANOS_PER_SEC {
                    let hit = CacheHit {
                        records: Arc::clone(&s.records),
                        rcode: s.rcode,
                        remaining_ttl: (remaining_ns / NANOS_PER_SEC) as u32,
                    };
                    self.store.detach(i);
                    self.store.push_front(i);
                    self.hits += 1;
                    Some(hit)
                } else {
                    // Single probe: the occupied entry removes itself —
                    // no second hash of the key as the old
                    // `get_mut`-then-`remove` pair paid.
                    e.remove();
                    self.store.detach(i);
                    self.store.release(i);
                    self.misses += 1;
                    None
                }
            }
            MapEntry::Vacant(_) => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up an answer. On a hit, returns the records with TTLs
    /// decremented by the time already spent in cache, plus the rcode
    /// (`NoError` for positive entries). Expired entries are removed.
    pub fn get(&mut self, name: &Name, qtype: RrType, now: SimTime) -> Option<(Vec<Record>, Rcode)> {
        let hit = self.get_shared(name, qtype, now)?;
        Some((hit.decayed_records().collect(), hit.rcode))
    }

    /// Drops every entry (used when a deployment switches resolvers).
    pub fn clear(&mut self) {
        self.index.clear();
        self.store.clear();
        self.expiry.clear();
    }
}

/// The pre-interning cache: `String` keys, full-map expired purge and an
/// O(n) LRU victim scan. Kept only as the behavioural reference for the
/// equivalence tests and the `cache_churn` before/after benchmark.
#[cfg(any(test, feature = "bench-naive"))]
pub mod naive {
    use dns_wire::{Name, Rcode, Record, RrType};
    use netsim::{SimDuration, SimTime};
    use std::collections::HashMap;

    fn key(name: &Name, qtype: RrType) -> (String, u16) {
        (name.canonical(), qtype.to_u16())
    }

    #[derive(Debug, Clone)]
    struct Entry {
        records: Vec<Record>,
        rcode: Rcode,
        expires: SimTime,
        last_used: SimTime,
    }

    /// TTL + LRU cache with the original O(n) eviction strategy.
    #[derive(Debug)]
    pub struct DnsCache {
        entries: HashMap<(String, u16), Entry>,
        capacity: usize,
        /// Cache hits served.
        pub hits: u64,
        /// Lookups that found nothing usable.
        pub misses: u64,
    }

    impl DnsCache {
        /// A cache bounded to `capacity` entries.
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "cache capacity must be positive");
            DnsCache {
                entries: HashMap::new(),
                capacity,
                hits: 0,
                misses: 0,
            }
        }

        /// Number of entries.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// True when the cache is empty.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Stores a positive answer (minimum record TTL governs expiry).
        pub fn insert(&mut self, name: &Name, qtype: RrType, records: Vec<Record>, now: SimTime) {
            if records.is_empty() {
                return;
            }
            let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
            if min_ttl == 0 {
                return;
            }
            self.insert_entry(
                key(name, qtype),
                Entry {
                    records,
                    rcode: Rcode::NoError,
                    expires: now + SimDuration::from_secs(u64::from(min_ttl)),
                    last_used: now,
                },
                now,
            );
        }

        /// Stores a negative answer.
        pub fn insert_negative(
            &mut self,
            name: &Name,
            qtype: RrType,
            rcode: Rcode,
            ttl: u32,
            now: SimTime,
        ) {
            if ttl == 0 {
                return;
            }
            self.insert_entry(
                key(name, qtype),
                Entry {
                    records: Vec::new(),
                    rcode,
                    expires: now + SimDuration::from_secs(u64::from(ttl)),
                    last_used: now,
                },
                now,
            );
        }

        fn insert_entry(&mut self, k: (String, u16), e: Entry, now: SimTime) {
            if self.entries.len() >= self.capacity && !self.entries.contains_key(&k) {
                self.entries.retain(|_, e| e.expires > now);
                if self.entries.len() >= self.capacity {
                    let victim = self
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone());
                    if let Some(v) = victim {
                        self.entries.remove(&v);
                    }
                }
            }
            self.entries.insert(k, e);
        }

        /// Looks up an answer, decaying TTLs and removing expired
        /// entries — including entries inside their final second, which
        /// would otherwise be served with an uncacheable TTL of 0.
        pub fn get(
            &mut self,
            name: &Name,
            qtype: RrType,
            now: SimTime,
        ) -> Option<(Vec<Record>, Rcode)> {
            let k = key(name, qtype);
            match self.entries.get_mut(&k) {
                Some(e)
                    if e.expires.as_nanos().saturating_sub(now.as_nanos())
                        >= super::NANOS_PER_SEC =>
                {
                    e.last_used = now;
                    let remaining_secs =
                        (e.expires.as_nanos() - now.as_nanos()) / super::NANOS_PER_SEC;
                    let records: Vec<Record> = e
                        .records
                        .iter()
                        .map(|r| {
                            let mut r = r.clone();
                            r.ttl = r.ttl.min(remaining_secs as u32);
                            r
                        })
                        .collect();
                    let rcode = e.rcode;
                    self.hits += 1;
                    Some((records, rcode))
                }
                Some(_) => {
                    self.entries.remove(&k);
                    self.misses += 1;
                    None
                }
                None => {
                    self.misses += 1;
                    None
                }
            }
        }

        /// Drops every entry.
        pub fn clear(&mut self) {
            self.entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{RData, RrClass};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_record(name: &str, ttl: u32) -> Record {
        Record::new(n(name), RrClass::In, ttl, RData::A(Ipv4Addr::new(1, 2, 3, 4)))
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        assert!(c.get(&n("a.test"), RrType::A, at(29)).is_some());
        assert!(c.get(&n("a.test"), RrType::A, at(31)).is_none());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn ttl_decays_while_cached() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        let (recs, _) = c.get(&n("a.test"), RrType::A, at(10)).unwrap();
        assert_eq!(recs[0].ttl, 20);
    }

    #[test]
    fn shared_hit_keeps_original_ttls_and_decays_on_demand() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        let hit = c.get_shared(&n("a.test"), RrType::A, at(10)).unwrap();
        assert_eq!(hit.records[0].ttl, 30, "shared set keeps the stored TTL");
        assert_eq!(hit.remaining_ttl, 20);
        let decayed: Vec<Record> = hit.decayed_records().collect();
        assert_eq!(decayed[0].ttl, 20);
        // A second hit shares the same allocation.
        let again = c.get_shared(&n("a.test"), RrType::A, at(11)).unwrap();
        assert!(Arc::ptr_eq(&hit.records, &again.records));
    }

    #[test]
    fn entry_ttl_is_minimum_of_records() {
        let mut c = DnsCache::new(16);
        c.insert(
            &n("a.test"),
            RrType::A,
            vec![a_record("a.test", 30), a_record("a.test", 5)],
            at(0),
        );
        assert!(c.get(&n("a.test"), RrType::A, at(4)).is_some());
        assert!(c.get(&n("a.test"), RrType::A, at(6)).is_none());
    }

    #[test]
    fn boundary_hit_with_exactly_one_second_left_miss_past_it() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        // Exactly one second of life left: the last instant the entry is
        // servable — and it goes out with TTL 1, never 0.
        let (recs, _) = c
            .get(&n("a.test"), RrType::A, at(29))
            .expect("a whole second of life left is still a hit");
        assert_eq!(recs[0].ttl, 1);
        // One nanosecond later the remainder is sub-second: the entry
        // expires rather than being served as uncacheable.
        let inside_final_second = at(29) + SimDuration::from_nanos(1);
        assert!(
            c.get(&n("a.test"), RrType::A, inside_final_second).is_none(),
            "sub-second remainder must expire, not serve TTL 0"
        );
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn final_subsecond_expires_instead_of_serving_ttl_zero() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 5)], at(0));
        let half_sec_left = at(4) + SimDuration::from_millis(500);
        assert!(
            c.get(&n("a.test"), RrType::A, half_sec_left).is_none(),
            "an answer that would carry TTL 0 must not be served"
        );
        assert!(c.is_empty(), "the dying entry is removed by the lookup");
        // The shared-hit path agrees (re-insert; probe via get_shared).
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 5)], at(10));
        let hit = c.get_shared(&n("a.test"), RrType::A, at(14)).unwrap();
        assert_eq!(hit.remaining_ttl, 1, "remaining_ttl is never 0 on a hit");
        assert!(c
            .get_shared(
                &n("a.test"),
                RrType::A,
                at(14) + SimDuration::from_millis(1)
            )
            .is_none());
    }

    #[test]
    fn zero_ttl_is_never_cached() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 0)], at(0));
        assert!(c.get(&n("a.test"), RrType::A, at(0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn negative_caching() {
        let mut c = DnsCache::new(16);
        c.insert_negative(&n("no.test"), RrType::A, Rcode::NxDomain, 10, at(0));
        let (recs, rcode) = c.get(&n("no.test"), RrType::A, at(5)).unwrap();
        assert!(recs.is_empty());
        assert_eq!(rcode, Rcode::NxDomain);
        assert!(c.get(&n("no.test"), RrType::A, at(11)).is_none());
    }

    #[test]
    fn negative_entry_ttl_decays_to_boundary() {
        let mut c = DnsCache::new(16);
        c.insert_negative(&n("no.test"), RrType::A, Rcode::NxDomain, 10, at(0));
        // Still a hit with exactly one second of lifetime left...
        let (recs, rcode) = c.get(&n("no.test"), RrType::A, at(9)).unwrap();
        assert!(recs.is_empty());
        assert_eq!(rcode, Rcode::NxDomain);
        // ...and a miss once the remainder is sub-second: negative
        // entries honour the same serve-≥1 s boundary as positive ones.
        let inside_final_second = at(9) + SimDuration::from_nanos(1);
        assert!(c.get(&n("no.test"), RrType::A, inside_final_second).is_none());
        assert!(c.is_empty(), "expired negative entry must be removed");
    }

    #[test]
    fn case_insensitive_keys() {
        let mut c = DnsCache::new(16);
        c.insert(&n("A.Test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        assert!(c.get(&n("a.TEST"), RrType::A, at(1)).is_some());
    }

    #[test]
    fn type_is_part_of_the_key() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        assert!(c.get(&n("a.test"), RrType::Aaaa, at(1)).is_none());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = DnsCache::new(2);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 300)], at(0));
        c.insert(&n("b.test"), RrType::A, vec![a_record("b.test", 300)], at(1));
        // Touch `a` so `b` becomes the LRU victim on same expiry basis.
        assert!(c.get(&n("a.test"), RrType::A, at(2)).is_some());
        c.insert(&n("c.test"), RrType::A, vec![a_record("c.test", 100)], at(3));
        assert_eq!(c.len(), 2);
        // Neither entry has expired, so recency decides: `b` is older.
        assert!(c.get(&n("b.test"), RrType::A, at(4)).is_none());
        assert!(c.get(&n("a.test"), RrType::A, at(4)).is_some());
        assert!(c.get(&n("c.test"), RrType::A, at(4)).is_some());
    }

    #[test]
    fn all_expired_entries_are_purged_before_any_live_eviction() {
        let mut c = DnsCache::new(3);
        // Two entries that expire at t=10, one long-lived entry that is
        // the LRU by last use.
        c.insert(&n("dead1.test"), RrType::A, vec![a_record("dead1.test", 10)], at(0));
        c.insert(&n("dead2.test"), RrType::A, vec![a_record("dead2.test", 10)], at(1));
        c.insert(&n("live.test"), RrType::A, vec![a_record("live.test", 300)], at(2));
        // At t=20 both dead entries have expired. Inserting at capacity
        // must purge them *both* rather than evicting one dead entry now
        // and the live LRU entry on the next insert.
        c.insert(&n("new1.test"), RrType::A, vec![a_record("new1.test", 300)], at(20));
        c.insert(&n("new2.test"), RrType::A, vec![a_record("new2.test", 300)], at(21));
        assert_eq!(c.len(), 3);
        assert!(
            c.get(&n("live.test"), RrType::A, at(22)).is_some(),
            "live entry was evicted while expired entries occupied the cache"
        );
        assert!(c.get(&n("new1.test"), RrType::A, at(22)).is_some());
        assert!(c.get(&n("new2.test"), RrType::A, at(22)).is_some());
    }

    #[test]
    fn live_lru_eviction_only_once_no_entry_is_expired() {
        let mut c = DnsCache::new(2);
        c.insert(&n("old.test"), RrType::A, vec![a_record("old.test", 5)], at(0));
        c.insert(&n("fresh.test"), RrType::A, vec![a_record("fresh.test", 300)], at(1));
        // `old` is expired at t=10: it must be the one to go even though
        // a plain LRU would also have picked it here; the point is the
        // cache never holds an expired entry past a capacity insert.
        c.insert(&n("new.test"), RrType::A, vec![a_record("new.test", 300)], at(10));
        assert!(c.get(&n("fresh.test"), RrType::A, at(11)).is_some());
        assert!(c.get(&n("new.test"), RrType::A, at(11)).is_some());
        assert!(c.get(&n("old.test"), RrType::A, at(11)).is_none());
    }

    #[test]
    fn reinsert_refreshes_entry_and_recency() {
        let mut c = DnsCache::new(2);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 10)], at(0));
        c.insert(&n("b.test"), RrType::A, vec![a_record("b.test", 300)], at(1));
        // Re-inserting `a` must refresh its expiry and make `b` the LRU.
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 300)], at(2));
        c.insert(&n("c.test"), RrType::A, vec![a_record("c.test", 300)], at(3));
        assert!(c.get(&n("a.test"), RrType::A, at(50)).is_some());
        assert!(c.get(&n("b.test"), RrType::A, at(50)).is_none());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = DnsCache::new(4);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        c.clear();
        assert!(c.is_empty());
        // Reusable after clear.
        c.insert(&n("b.test"), RrType::A, vec![a_record("b.test", 30)], at(0));
        assert!(c.get(&n("b.test"), RrType::A, at(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        DnsCache::new(0);
    }

    /// Satellite: the old O(n) cache and the new intrusive-list cache,
    /// driven with the same randomized insert/get/expiry schedule, must
    /// produce identical hit/miss/eviction sequences. Times are strictly
    /// increasing (simulation time is monotone; equal-timestamp LRU
    /// tie-breaking was never defined in the old map-scan version).
    #[test]
    fn randomized_schedule_matches_naive_cache() {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        let names: Vec<Name> = [
            "a.mycdn.ciab.test",
            "b.mycdn.ciab.test",
            "c.mycdn.ciab.test",
            "Video.Demo1.MyCdn.ciab.test",
            "video.demo1.mycdn.ciab.test",
            "cache-1.mycdn.ciab.test",
            "q-cf.bstatic.com",
            "static.tacdn.com",
            "a0.muscache.com",
            "www.example.com",
            "mail.example.com",
            "example.com",
        ]
        .iter()
        .map(|s| Name::parse(s).unwrap())
        .collect();

        for seed in 0..8u64 {
            let mut rng = seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 99;
            let mut old = naive::DnsCache::new(4);
            let mut new = DnsCache::new(4);
            let mut now_ns: u64 = 0;
            for step in 0..600 {
                // Strictly increasing virtual time, 1..=7 s plus jitter.
                now_ns += 1_000_000_000 * (1 + splitmix64(&mut rng) % 7)
                    + splitmix64(&mut rng) % 1_000_000_000;
                let now = SimTime::ZERO + SimDuration::from_nanos(now_ns);
                let name = &names[(splitmix64(&mut rng) % names.len() as u64) as usize];
                match splitmix64(&mut rng) % 10 {
                    0..=3 => {
                        let ttl = 1 + (splitmix64(&mut rng) % 40) as u32;
                        let rec =
                            Record::new(name.clone(), RrClass::In, ttl, RData::A(Ipv4Addr::LOCALHOST));
                        old.insert(name, RrType::A, vec![rec.clone()], now);
                        new.insert(name, RrType::A, vec![rec], now);
                    }
                    4 => {
                        let ttl = 1 + (splitmix64(&mut rng) % 20) as u32;
                        old.insert_negative(name, RrType::A, Rcode::NxDomain, ttl, now);
                        new.insert_negative(name, RrType::A, Rcode::NxDomain, ttl, now);
                    }
                    _ => {
                        let a = old.get(name, RrType::A, now);
                        let b = new.get(name, RrType::A, now);
                        assert_eq!(a, b, "seed {seed} step {step}: lookup diverged");
                    }
                }
                assert_eq!(old.len(), new.len(), "seed {seed} step {step}: size diverged");
                assert_eq!(old.hits, new.hits, "seed {seed} step {step}: hits diverged");
                assert_eq!(
                    old.misses, new.misses,
                    "seed {seed} step {step}: misses diverged"
                );
            }
            // Final membership must agree entry by entry.
            let end = SimTime::ZERO + SimDuration::from_nanos(now_ns);
            for name in &names {
                assert_eq!(
                    old.get(name, RrType::A, end),
                    new.get(name, RrType::A, end),
                    "seed {seed}: final membership diverged for {name}"
                );
            }
        }
    }
}
