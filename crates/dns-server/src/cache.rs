//! A TTL-honouring, capacity-bounded DNS cache.
//!
//! The paper's Figure 2 analysis leans on caching behaviour: *"for
//! popular websites' CDN domains, the A records TTL never expires at
//! L-DNS and the cached A records are used for lookup"* — which is why
//! step 2 (the A-DNS CNAME lookup) never appears in their measurements.
//! This cache reproduces that: positive and negative entries with
//! absolute expiry in virtual time, TTL decay on read, and LRU eviction
//! at capacity.

use dns_wire::{Name, Rcode, Record, RrType};
use netsim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Cache key: canonical name + type.
fn key(name: &Name, qtype: RrType) -> (String, u16) {
    (name.canonical(), qtype.to_u16())
}

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<Record>,
    rcode: Rcode,
    expires: SimTime,
    last_used: SimTime,
}

/// TTL + LRU cache for DNS answers.
#[derive(Debug)]
pub struct DnsCache {
    entries: HashMap<(String, u16), Entry>,
    capacity: usize,
    /// Cache hits served.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
}

impl DnsCache {
    /// A cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        DnsCache {
            entries: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of live entries (including expired but not yet evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores a positive answer. The entry TTL is the smallest record
    /// TTL, so no record is ever served beyond its own lifetime.
    pub fn insert(&mut self, name: &Name, qtype: RrType, records: Vec<Record>, now: SimTime) {
        if records.is_empty() {
            return;
        }
        let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        if min_ttl == 0 {
            return; // TTL 0 forbids caching
        }
        self.insert_entry(
            key(name, qtype),
            Entry {
                records,
                rcode: Rcode::NoError,
                expires: now + SimDuration::from_secs(u64::from(min_ttl)),
                last_used: now,
            },
            now,
        );
    }

    /// Stores a negative answer (NXDOMAIN / NoData) for `ttl` — RFC 2308
    /// negative caching, with the TTL taken from the zone's SOA minimum
    /// by the caller.
    pub fn insert_negative(
        &mut self,
        name: &Name,
        qtype: RrType,
        rcode: Rcode,
        ttl: u32,
        now: SimTime,
    ) {
        if ttl == 0 {
            return;
        }
        self.insert_entry(
            key(name, qtype),
            Entry {
                records: Vec::new(),
                rcode,
                expires: now + SimDuration::from_secs(u64::from(ttl)),
                last_used: now,
            },
            now,
        );
    }

    fn insert_entry(&mut self, k: (String, u16), e: Entry, now: SimTime) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&k) {
            // Expired entries are dead weight: drop them all first, and
            // only fall back to evicting a live (least recently used)
            // entry if the cache is still full.
            self.entries.retain(|_, e| e.expires > now);
            if self.entries.len() >= self.capacity {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                if let Some(v) = victim {
                    self.entries.remove(&v);
                }
            }
        }
        self.entries.insert(k, e);
    }

    /// Looks up an answer. On a hit, returns the records with TTLs
    /// decremented by the time already spent in cache, plus the rcode
    /// (`NoError` for positive entries). Expired entries are removed.
    pub fn get(&mut self, name: &Name, qtype: RrType, now: SimTime) -> Option<(Vec<Record>, Rcode)> {
        let k = key(name, qtype);
        match self.entries.get_mut(&k) {
            Some(e) if e.expires > now => {
                e.last_used = now;
                let remaining_secs =
                    (e.expires.as_nanos() - now.as_nanos()) / 1_000_000_000;
                let records: Vec<Record> = e
                    .records
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        // Serve the truncated remaining lifetime as-is. An
                        // entry in its final sub-second goes out with TTL 0
                        // (uncacheable downstream) — rounding it up to 1
                        // would let downstream caches outlive the
                        // authoritative expiry.
                        r.ttl = r.ttl.min(remaining_secs as u32);
                        r
                    })
                    .collect();
                let rcode = e.rcode;
                self.hits += 1;
                Some((records, rcode))
            }
            Some(_) => {
                self.entries.remove(&k);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drops every entry (used when a deployment switches resolvers).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{RData, RrClass};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_record(name: &str, ttl: u32) -> Record {
        Record::new(n(name), RrClass::In, ttl, RData::A(Ipv4Addr::new(1, 2, 3, 4)))
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        assert!(c.get(&n("a.test"), RrType::A, at(29)).is_some());
        assert!(c.get(&n("a.test"), RrType::A, at(31)).is_none());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn ttl_decays_while_cached() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        let (recs, _) = c.get(&n("a.test"), RrType::A, at(10)).unwrap();
        assert_eq!(recs[0].ttl, 20);
    }

    #[test]
    fn entry_ttl_is_minimum_of_records() {
        let mut c = DnsCache::new(16);
        c.insert(
            &n("a.test"),
            RrType::A,
            vec![a_record("a.test", 30), a_record("a.test", 5)],
            at(0),
        );
        assert!(c.get(&n("a.test"), RrType::A, at(4)).is_some());
        assert!(c.get(&n("a.test"), RrType::A, at(6)).is_none());
    }

    #[test]
    fn boundary_hit_at_one_nano_before_expiry_miss_at_expiry() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        let expires = at(30);
        let just_before = SimTime::ZERO + SimDuration::from_nanos(expires.as_nanos() - 1);
        let (recs, _) = c
            .get(&n("a.test"), RrType::A, just_before)
            .expect("one nanosecond of life left is still a hit");
        // <1 s remaining truncates to 0: served, but uncacheable downstream.
        assert_eq!(recs[0].ttl, 0);
        assert!(
            c.get(&n("a.test"), RrType::A, expires).is_none(),
            "exactly at expiry must miss"
        );
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn final_subsecond_serves_ttl_zero_not_one() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 5)], at(0));
        let half_sec_left = at(4) + SimDuration::from_millis(500);
        let (recs, _) = c.get(&n("a.test"), RrType::A, half_sec_left).unwrap();
        assert_eq!(
            recs[0].ttl, 0,
            "remaining TTL must truncate, never round up to 1"
        );
    }

    #[test]
    fn zero_ttl_is_never_cached() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 0)], at(0));
        assert!(c.get(&n("a.test"), RrType::A, at(0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn negative_caching() {
        let mut c = DnsCache::new(16);
        c.insert_negative(&n("no.test"), RrType::A, Rcode::NxDomain, 10, at(0));
        let (recs, rcode) = c.get(&n("no.test"), RrType::A, at(5)).unwrap();
        assert!(recs.is_empty());
        assert_eq!(rcode, Rcode::NxDomain);
        assert!(c.get(&n("no.test"), RrType::A, at(11)).is_none());
    }

    #[test]
    fn negative_entry_ttl_decays_to_boundary() {
        let mut c = DnsCache::new(16);
        c.insert_negative(&n("no.test"), RrType::A, Rcode::NxDomain, 10, at(0));
        // Still a hit through the very last nanosecond of its lifetime...
        let last_ns = SimTime::ZERO + SimDuration::from_nanos(at(10).as_nanos() - 1);
        let (recs, rcode) = c.get(&n("no.test"), RrType::A, last_ns).unwrap();
        assert!(recs.is_empty());
        assert_eq!(rcode, Rcode::NxDomain);
        // ...and a miss at exactly the expiry instant.
        assert!(c.get(&n("no.test"), RrType::A, at(10)).is_none());
        assert!(c.is_empty(), "expired negative entry must be removed");
    }

    #[test]
    fn case_insensitive_keys() {
        let mut c = DnsCache::new(16);
        c.insert(&n("A.Test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        assert!(c.get(&n("a.TEST"), RrType::A, at(1)).is_some());
    }

    #[test]
    fn type_is_part_of_the_key() {
        let mut c = DnsCache::new(16);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        assert!(c.get(&n("a.test"), RrType::Aaaa, at(1)).is_none());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = DnsCache::new(2);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 300)], at(0));
        c.insert(&n("b.test"), RrType::A, vec![a_record("b.test", 300)], at(1));
        // Touch `a` so `b` becomes the LRU victim on same expiry basis.
        assert!(c.get(&n("a.test"), RrType::A, at(2)).is_some());
        c.insert(&n("c.test"), RrType::A, vec![a_record("c.test", 100)], at(3));
        assert_eq!(c.len(), 2);
        // Neither entry has expired, so last_used decides: `b` is older.
        assert!(c.get(&n("b.test"), RrType::A, at(4)).is_none());
        assert!(c.get(&n("a.test"), RrType::A, at(4)).is_some());
        assert!(c.get(&n("c.test"), RrType::A, at(4)).is_some());
    }

    #[test]
    fn all_expired_entries_are_purged_before_any_live_eviction() {
        let mut c = DnsCache::new(3);
        // Two entries that expire at t=10, one long-lived entry that is
        // the LRU by last_used.
        c.insert(&n("dead1.test"), RrType::A, vec![a_record("dead1.test", 10)], at(0));
        c.insert(&n("dead2.test"), RrType::A, vec![a_record("dead2.test", 10)], at(1));
        c.insert(&n("live.test"), RrType::A, vec![a_record("live.test", 300)], at(2));
        // At t=20 both dead entries have expired. Inserting at capacity
        // must purge them *both* rather than evicting one dead entry now
        // and the live LRU entry on the next insert.
        c.insert(&n("new1.test"), RrType::A, vec![a_record("new1.test", 300)], at(20));
        c.insert(&n("new2.test"), RrType::A, vec![a_record("new2.test", 300)], at(21));
        assert_eq!(c.len(), 3);
        assert!(
            c.get(&n("live.test"), RrType::A, at(22)).is_some(),
            "live entry was evicted while expired entries occupied the cache"
        );
        assert!(c.get(&n("new1.test"), RrType::A, at(22)).is_some());
        assert!(c.get(&n("new2.test"), RrType::A, at(22)).is_some());
    }

    #[test]
    fn live_lru_eviction_only_once_no_entry_is_expired() {
        let mut c = DnsCache::new(2);
        c.insert(&n("old.test"), RrType::A, vec![a_record("old.test", 5)], at(0));
        c.insert(&n("fresh.test"), RrType::A, vec![a_record("fresh.test", 300)], at(1));
        // `old` is expired at t=10: it must be the one to go even though
        // a plain LRU would also have picked it here; the point is the
        // cache never holds an expired entry past a capacity insert.
        c.insert(&n("new.test"), RrType::A, vec![a_record("new.test", 300)], at(10));
        assert!(c.get(&n("fresh.test"), RrType::A, at(11)).is_some());
        assert!(c.get(&n("new.test"), RrType::A, at(11)).is_some());
        assert!(c.get(&n("old.test"), RrType::A, at(11)).is_none());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = DnsCache::new(4);
        c.insert(&n("a.test"), RrType::A, vec![a_record("a.test", 30)], at(0));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        DnsCache::new(0);
    }
}
