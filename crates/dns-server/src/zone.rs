//! Authoritative zone data and lookup semantics.

use dns_wire::{Name, NameId, RData, Record, RrClass, RrType};
use std::collections::HashMap;

/// The result of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// Records of the requested type at the name (possibly preceded by a
    /// CNAME chain within the zone).
    Answer(Vec<Record>),
    /// The name lies below a delegation: here are the NS records and any
    /// glue addresses the zone holds.
    Referral {
        /// NS records for the delegated child zone.
        ns: Vec<Record>,
        /// A records for the name servers, when the zone has them.
        glue: Vec<Record>,
    },
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in this zone.
    NxDomain,
    /// The name is not within this zone's authority at all.
    NotAuthoritative,
}

/// An authoritative zone: an apex name and a record store.
///
/// Lookup follows RFC 1034 §4.3.2: exact-match answers, CNAME
/// substitution (chased within the zone, then surfaced for the resolver
/// to finish), and delegation referrals for names below an NS cut.
#[derive(Debug, Clone)]
pub struct Zone {
    apex: Name,
    apex_id: NameId,
    /// Owner names are interned: the store is keyed and walked by
    /// [`NameId`], so lookups never build `canonical()` strings.
    records: HashMap<NameId, Vec<Record>>,
}

impl Zone {
    /// An empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Self {
        Zone {
            apex_id: apex.id(),
            apex,
            records: HashMap::new(),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Adds a record.
    ///
    /// # Panics
    /// Panics if the owner name is outside the zone — a configuration
    /// bug, not a runtime condition.
    pub fn add(&mut self, record: Record) -> &mut Self {
        assert!(
            record.name.is_subdomain_of(&self.apex),
            "{} is outside zone {}",
            record.name,
            self.apex
        );
        self.records
            .entry(record.name.id())
            .or_default()
            .push(record);
        self
    }

    /// Convenience: adds an A record with the given TTL.
    pub fn add_a(&mut self, name: Name, addr: std::net::Ipv4Addr, ttl: u32) -> &mut Self {
        self.add(Record::new(name, RrClass::In, ttl, RData::A(addr)))
    }

    /// Adds a record from presentation format, zone-file style.
    ///
    /// ```
    /// use dns_server::Zone;
    /// use dns_wire::Name;
    /// let mut zone = Zone::new(Name::parse("mycdn.ciab.test").unwrap());
    /// zone.add_str("video.demo1.mycdn.ciab.test. 30 IN A 10.96.0.20").unwrap();
    /// assert_eq!(zone.len(), 1);
    /// ```
    ///
    /// # Errors
    /// Returns the parse error for malformed lines. Panics (like
    /// [`Zone::add`]) if the parsed owner is outside the zone.
    pub fn add_str(&mut self, line: &str) -> Result<&mut Self, dns_wire::PresentationError> {
        let record: Record = line.parse()?;
        Ok(self.add(record))
    }

    /// Adds several presentation-format records, stopping at the first
    /// error.
    pub fn add_lines(&mut self, lines: &str) -> Result<&mut Self, dns_wire::PresentationError> {
        for line in lines.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            self.add_str(line)?;
        }
        Ok(self)
    }

    /// Convenience: adds a CNAME record.
    pub fn add_cname(&mut self, name: Name, target: Name, ttl: u32) -> &mut Self {
        self.add(Record::new(name, RrClass::In, ttl, RData::Cname(target)))
    }

    /// Convenience: delegates `child` to a name server, with glue.
    pub fn delegate(
        &mut self,
        child: Name,
        ns_name: Name,
        ns_addr: std::net::Ipv4Addr,
        ttl: u32,
    ) -> &mut Self {
        self.add(Record::new(
            child,
            RrClass::In,
            ttl,
            RData::Ns(ns_name.clone()),
        ));
        // Glue may live outside the zone cut; store it regardless (it is
        // served in the additional section of referrals only).
        self.records
            .entry(ns_name.id())
            .or_default()
            .push(Record::new(ns_name, RrClass::In, ttl, RData::A(ns_addr)));
        self
    }

    /// Number of records in the zone.
    pub fn len(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// True when the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up `qname`/`qtype`.
    // detlint: allow-item(hot-index) — `cuts` is a MAX_LABELS-sized
    // stack array and `ncuts` counts parent-chain steps of a name, which
    // the wire format caps at MAX_LABELS; the slice below reads `..ncuts`.
    pub fn lookup(&self, qname: &Name, qtype: RrType) -> LookupResult {
        let qid = qname.id();
        if !qid.is_subdomain_of(self.apex_id) {
            return LookupResult::NotAuthoritative;
        }
        // Delegation check: walk from the apex child toward qname; the
        // first NS cut strictly between apex and qname wins (unless the
        // query is for the cut's NS records themselves at the apex). The
        // walk happens in id space: the suffix chain is a stack array of
        // `u32`s, not a Vec of cloned `Name`s.
        let mut cuts = [NameId::ROOT; dns_wire::name::MAX_LABELS];
        let mut ncuts = 0;
        let mut cut = qid;
        while cut != self.apex_id && cut != NameId::ROOT {
            cuts[ncuts] = cut;
            ncuts += 1;
            match cut.parent() {
                Some(p) => cut = p,
                None => break,
            }
        }
        for &candidate in cuts[..ncuts].iter().rev() {
            // apex-side first
            if candidate == qid && qtype == RrType::Ns {
                break; // asking for the delegation itself: answer below
            }
            if let Some(recs) = self.records.get(&candidate) {
                let ns: Vec<Record> = recs
                    .iter()
                    .filter(|r| r.rrtype() == RrType::Ns)
                    .cloned()
                    .collect();
                if !ns.is_empty() && candidate != self.apex_id {
                    let mut glue = Vec::new();
                    for n in &ns {
                        if let RData::Ns(target) = &n.rdata {
                            if let Some(g) =
                                target.lookup_id().and_then(|t| self.records.get(&t))
                            {
                                glue.extend(
                                    g.iter().filter(|r| r.rrtype() == RrType::A).cloned(),
                                );
                            }
                        }
                    }
                    return LookupResult::Referral { ns, glue };
                }
            }
        }
        // Exact-name lookup with in-zone CNAME chasing.
        let mut answers: Vec<Record> = Vec::new();
        let mut current = qid;
        for _ in 0..8 {
            match self.records.get(&current) {
                Some(recs) => {
                    let typed: Vec<Record> = recs
                        .iter()
                        .filter(|r| r.rrtype() == qtype)
                        .cloned()
                        .collect();
                    if !typed.is_empty() {
                        answers.extend(typed);
                        return LookupResult::Answer(answers);
                    }
                    let cname = recs.iter().find(|r| r.rrtype() == RrType::Cname);
                    match (cname, qtype) {
                        (Some(c), t) if t != RrType::Cname => {
                            answers.push(c.clone());
                            if let RData::Cname(target) = &c.rdata {
                                if target.is_subdomain_of(&self.apex) {
                                    if let Some(t) = target.lookup_id() {
                                        current = t;
                                        continue;
                                    }
                                    // In-zone target nobody ever stored:
                                    // surface the chain collected so far.
                                    return LookupResult::Answer(answers);
                                }
                            }
                            // Chain leaves the zone: surface what we have.
                            return LookupResult::Answer(answers);
                        }
                        _ => {
                            return if answers.is_empty() {
                                LookupResult::NoData
                            } else {
                                LookupResult::Answer(answers)
                            };
                        }
                    }
                }
                None => {
                    return if answers.is_empty() {
                        if self.name_exists(current) {
                            LookupResult::NoData
                        } else {
                            LookupResult::NxDomain
                        }
                    } else {
                        LookupResult::Answer(answers)
                    };
                }
            }
        }
        // CNAME loop inside the zone: treat as server failure upstream.
        LookupResult::Answer(answers)
    }

    /// "Empty non-terminal" check: a name exists if any record owner is
    /// at or below it.
    fn name_exists(&self, name: NameId) -> bool {
        self.records.keys().any(|&n| n.is_subdomain_of(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn cdn_zone() -> Zone {
        let mut z = Zone::new(n("mycdn.ciab.test"));
        z.add_a(n("cache-1.mycdn.ciab.test"), Ipv4Addr::new(10, 0, 0, 11), 30)
            .add_a(n("cache-1.mycdn.ciab.test"), Ipv4Addr::new(10, 0, 0, 12), 30)
            .add_cname(n("video.demo1.mycdn.ciab.test"), n("cache-1.mycdn.ciab.test"), 60);
        z
    }

    #[test]
    fn answers_exact_match_with_all_records() {
        let z = cdn_zone();
        match z.lookup(&n("cache-1.mycdn.ciab.test"), RrType::A) {
            LookupResult::Answer(recs) => assert_eq!(recs.len(), 2),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn chases_in_zone_cname() {
        let z = cdn_zone();
        match z.lookup(&n("video.demo1.mycdn.ciab.test"), RrType::A) {
            LookupResult::Answer(recs) => {
                assert_eq!(recs[0].rrtype(), RrType::Cname);
                assert_eq!(recs.len(), 3, "CNAME + 2 A records");
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn cname_query_returns_the_cname_itself() {
        let z = cdn_zone();
        match z.lookup(&n("video.demo1.mycdn.ciab.test"), RrType::Cname) {
            LookupResult::Answer(recs) => {
                assert_eq!(recs.len(), 1);
                assert_eq!(recs[0].rrtype(), RrType::Cname);
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn out_of_zone_cname_target_is_surfaced_not_chased() {
        let mut z = Zone::new(n("example.com"));
        z.add_cname(n("www.example.com"), n("cdn.other.net"), 60);
        match z.lookup(&n("www.example.com"), RrType::A) {
            LookupResult::Answer(recs) => {
                assert_eq!(recs.len(), 1);
                assert_eq!(
                    recs[0].rdata.as_cname().unwrap(),
                    &n("cdn.other.net")
                );
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn nxdomain_vs_nodata() {
        let z = cdn_zone();
        assert_eq!(
            z.lookup(&n("missing.mycdn.ciab.test"), RrType::A),
            LookupResult::NxDomain
        );
        assert_eq!(
            z.lookup(&n("cache-1.mycdn.ciab.test"), RrType::Txt),
            LookupResult::NoData
        );
        // Empty non-terminal: demo1.mycdn.ciab.test has a child but no
        // records of its own → NoData, not NXDOMAIN.
        assert_eq!(
            z.lookup(&n("demo1.mycdn.ciab.test"), RrType::A),
            LookupResult::NoData
        );
    }

    #[test]
    fn not_authoritative_outside_apex() {
        let z = cdn_zone();
        assert_eq!(
            z.lookup(&n("www.google.com"), RrType::A),
            LookupResult::NotAuthoritative
        );
    }

    #[test]
    fn referral_below_delegation_with_glue() {
        let mut z = Zone::new(n("test"));
        z.delegate(
            n("ciab.test"),
            n("ns1.ciab.test"),
            Ipv4Addr::new(10, 0, 0, 2),
            3600,
        );
        match z.lookup(&n("video.demo1.mycdn.ciab.test"), RrType::A) {
            LookupResult::Referral { ns, glue } => {
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 1);
                assert_eq!(glue[0].rdata.as_a(), Some(Ipv4Addr::new(10, 0, 0, 2)));
            }
            other => panic!("expected referral, got {other:?}"),
        }
    }

    #[test]
    fn ns_query_at_the_cut_answers_instead_of_referring() {
        let mut z = Zone::new(n("test"));
        z.delegate(
            n("ciab.test"),
            n("ns1.ciab.test"),
            Ipv4Addr::new(10, 0, 0, 2),
            3600,
        );
        match z.lookup(&n("ciab.test"), RrType::Ns) {
            LookupResult::Answer(recs) => assert_eq!(recs[0].rrtype(), RrType::Ns),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn apex_ns_records_do_not_cause_self_referral() {
        let mut z = Zone::new(n("ciab.test"));
        z.add(Record::new(
            n("ciab.test"),
            RrClass::In,
            3600,
            RData::Ns(n("ns1.ciab.test")),
        ));
        z.add_a(n("www.ciab.test"), Ipv4Addr::new(1, 2, 3, 4), 60);
        match z.lookup(&n("www.ciab.test"), RrType::A) {
            LookupResult::Answer(_) => {}
            other => panic!("apex NS wrongly treated as delegation: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn adding_out_of_zone_record_panics() {
        let mut z = Zone::new(n("example.com"));
        z.add_a(n("other.net"), Ipv4Addr::LOCALHOST, 60);
    }

    #[test]
    fn len_and_empty() {
        let mut z = Zone::new(n("x.test"));
        assert!(z.is_empty());
        z.add_a(n("a.x.test"), Ipv4Addr::LOCALHOST, 60);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    fn zone_builds_from_presentation_lines() {
        let mut z = Zone::new(n("mycdn.ciab.test"));
        z.add_lines(
            "; the CDN-in-a-box zone\n\
             video.demo1.mycdn.ciab.test. 60 IN CNAME cache-1.mycdn.ciab.test.\n\
             cache-1.mycdn.ciab.test.     30 IN A     10.96.0.20\n\
             \n\
             mycdn.ciab.test. 3600 IN SOA ns1.mycdn.ciab.test. admin.mycdn.ciab.test. 1 7200 900 1209600 30",
        )
        .unwrap();
        assert_eq!(z.len(), 3);
        match z.lookup(&n("video.demo1.mycdn.ciab.test"), RrType::A) {
            LookupResult::Answer(recs) => assert_eq!(recs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn add_lines_stops_at_first_error() {
        let mut z = Zone::new(n("x.test"));
        let res = z.add_lines("a.x.test. 60 IN A 1.2.3.4\nbroken line here");
        assert!(res.is_err());
        assert_eq!(z.len(), 1, "records before the error are kept");
    }

    #[test]
    fn root_zone_can_delegate_tlds() {
        let mut root = Zone::new(Name::root());
        root.delegate(n("test"), n("ns.test"), Ipv4Addr::new(10, 9, 9, 9), 86400);
        match root.lookup(&n("anything.under.test"), RrType::A) {
            LookupResult::Referral { ns, glue } => {
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 1);
            }
            other => panic!("expected referral from root, got {other:?}"),
        }
    }
}
