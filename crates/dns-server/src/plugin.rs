//! The plugin chain: CoreDNS-style query handling.
//!
//! A [`crate::server::DnsServer`] owns an ordered list of [`Plugin`]s.
//! For each query, plugins are consulted in order until one returns a
//! decision other than [`PluginDecision::Continue`]. Plugins also observe
//! upstream responses via [`Plugin::on_response`] (how the cache fills).

use dns_wire::Message;
use netsim::{SimTime, Telemetry};
use std::net::IpAddr;

/// Per-query context a plugin sees.
#[derive(Debug, Clone)]
pub struct QueryCtx {
    /// Virtual time the query is being processed.
    pub now: SimTime,
    /// Address the query came from. For the split-horizon decision this
    /// is the client as the server sees it — behind a P-GW NAT that is
    /// the gateway's address, reproducing the obfuscation the paper
    /// describes in §1.
    pub client: IpAddr,
    /// Client source port.
    pub client_port: u16,
    /// Where plugins record counters and resolution breadcrumbs. A
    /// default handle is a private no-op store, so tests and callers
    /// that don't collect telemetry construct it with
    /// `Telemetry::default()`.
    pub telemetry: Telemetry,
}

/// What a plugin wants done with a query.
#[derive(Debug)]
pub enum PluginDecision {
    /// Send this response to the client now.
    Respond(Message),
    /// Forward the query to an upstream server; the response is relayed
    /// back to the client (passing through every plugin's
    /// [`Plugin::on_response`]).
    Forward {
        /// Upstream server address (port 53).
        upstream: IpAddr,
    },
    /// Resolve iteratively starting from these root servers, then respond.
    Recurse {
        /// Root server addresses.
        roots: Vec<IpAddr>,
    },
    /// Drop the query without responding — the paper's "have the MEC DNS
    /// ignore queries not related to MEC-CDN" workaround.
    Ignore,
    /// This plugin has no opinion; ask the next one.
    Continue,
}

/// A query-processing stage.
pub trait Plugin: std::any::Any {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Examines a query and decides what to do with it.
    fn on_query(&mut self, ctx: &QueryCtx, query: &Message) -> PluginDecision;

    /// Observes a response obtained from an upstream (forward or
    /// recursion) before it is sent to the client. May mutate it.
    fn on_response(&mut self, _ctx: &QueryCtx, _response: &mut Message) {}

    /// Observes the fate of an upstream exchange the server ran on this
    /// plugin chain's behalf: `ok = true` when `upstream` answered,
    /// `false` when it exhausted the retry budget in silence. How the
    /// forward plugin's health tracker learns which upstreams are dead
    /// without doing its own I/O.
    fn on_upstream_event(&mut self, _now: SimTime, _upstream: IpAddr, _ok: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{Name, RrType};

    struct Always(&'static str);
    impl Plugin for Always {
        fn name(&self) -> &'static str {
            self.0
        }
        fn on_query(&mut self, _ctx: &QueryCtx, q: &Message) -> PluginDecision {
            PluginDecision::Respond(Message::response_to(q))
        }
    }

    #[test]
    fn plugin_trait_is_object_safe() {
        let mut plugins: Vec<Box<dyn Plugin>> = vec![Box::new(Always("a"))];
        let q = Message::query(1, Name::parse("x.test").unwrap(), RrType::A);
        let ctx = QueryCtx {
            now: SimTime::ZERO,
            client: "10.0.0.1".parse().unwrap(),
            client_port: 5000,
            telemetry: Telemetry::default(),
        };
        match plugins[0].on_query(&ctx, &q) {
            PluginDecision::Respond(r) => assert!(r.header.is_response),
            _ => panic!("expected respond"),
        }
        assert_eq!(plugins[0].name(), "a");
    }
}
