//! The DNS server node behavior: plugin chain, processing-delay model,
//! forwarding and full iterative recursion.

use crate::plugin::{Plugin, PluginDecision, QueryCtx};
use dns_wire::{ClientSubnet, Message, Name, Opt, Rcode, Record, RrType};
use netsim::{Datagram, Latency, NodeBehavior, NodeContext, SimDuration, Telemetry, TimerToken};
use std::collections::HashMap;
use std::net::IpAddr;

/// Timer-data tag for queued inbound queries.
const TAG_INBOX: u64 = 0x1 << 56;
/// Timer-data tag for upstream timeouts.
const TAG_PENDING: u64 = 0x2 << 56;
const TAG_MASK: u64 = 0xFF << 56;

/// Tuning for a DNS server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// UDP port served (53 everywhere in this workspace).
    pub port: u16,
    /// Per-query processing delay (lookup work, plugin chain).
    pub processing: Latency,
    /// Extra processing when the query carries an ECS option — the
    /// overhead whose end-to-end effect §4 measures at ×1.01–1.08.
    pub ecs_processing: Latency,
    /// Attach an ECS option (the client's /24) to upstream queries when
    /// the client did not send one — "ECS support at L-DNS".
    pub attach_ecs: bool,
    /// Drop any client-supplied ECS option instead of propagating it —
    /// the behaviour of a "hidden resolver" in a forwarding chain, which
    /// §1 cites as a way ECS-based localization breaks: the C-DNS then
    /// scopes its answer to the egress resolver, not the client.
    pub strip_ecs: bool,
    /// How long to wait for an upstream response before retrying.
    pub upstream_timeout: SimDuration,
    /// Retries per upstream server before giving up on it.
    pub upstream_retries: u8,
    /// When true, queries are processed by a single worker: each query's
    /// processing starts only after the previous one finishes, so load
    /// shows up as queueing delay. Realistic for a small containerized
    /// DNS pod; large shared resolvers stay `false` (parallel).
    pub single_worker: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 53,
            processing: Latency::UniformMs(0.1, 0.4),
            ecs_processing: Latency::UniformMs(0.05, 0.25),
            attach_ecs: false,
            upstream_timeout: SimDuration::from_millis(2000),
            upstream_retries: 2,
            single_worker: false,
            strip_ecs: false,
        }
    }
}

struct RecurseJob {
    roots: Vec<IpAddr>,
    servers: Vec<IpAddr>,
    server_idx: usize,
    current_name: Name,
    cname_count: u8,
    acc: Vec<Record>,
}

enum JobKind {
    Forward { upstream: IpAddr },
    Recurse(RecurseJob),
}

struct Job {
    /// Reply template: the original datagram the query arrived in.
    reply_to: Datagram,
    /// The client's original query (id, question, ECS...).
    query: Message,
    kind: JobKind,
    upstream_id: u16,
    attempts_left: u8,
}

/// A DNS server as a simulator node behavior.
///
/// Queries pass through the plugin chain after a sampled processing
/// delay; [`PluginDecision::Forward`] and [`PluginDecision::Recurse`]
/// run asynchronously with timeouts and retries, and their responses are
/// shown to every plugin's `on_response` (filling caches) before being
/// relayed to the client.
pub struct DnsServer {
    config: ServerConfig,
    plugins: Vec<Box<dyn Plugin>>,
    telemetry: Telemetry,
    inbox: HashMap<u64, Datagram>,
    next_inbox: u64,
    jobs: HashMap<u64, Job>,
    id_to_gen: HashMap<u16, u64>,
    next_gen: u64,
    next_id: u16,
    /// When the single worker next becomes free (see
    /// [`ServerConfig::single_worker`]).
    busy_until: netsim::SimTime,
    /// Queries received (valid DNS only).
    pub queries_received: u64,
    /// Responses sent to clients.
    pub responses_sent: u64,
    /// Queries dropped by a [`PluginDecision::Ignore`].
    pub queries_ignored: u64,
    /// Upstream exchanges that timed out (per attempt).
    pub upstream_timeouts: u64,
    /// Datagrams that failed to parse.
    pub malformed: u64,
}

impl DnsServer {
    /// Creates a server with the given plugin chain.
    pub fn new(config: ServerConfig, plugins: Vec<Box<dyn Plugin>>) -> Self {
        DnsServer {
            config,
            plugins,
            telemetry: Telemetry::default(),
            inbox: HashMap::new(),
            next_inbox: 0,
            jobs: HashMap::new(),
            id_to_gen: HashMap::new(),
            next_gen: 0,
            next_id: 1,
            busy_until: netsim::SimTime::ZERO,
            queries_received: 0,
            responses_sent: 0,
            queries_ignored: 0,
            upstream_timeouts: 0,
            malformed: 0,
        }
    }

    /// Routes this server's (and its plugins') telemetry into `t`.
    /// Builder-style so deployment code can chain it onto `new`.
    pub fn with_telemetry(mut self, t: Telemetry) -> Self {
        self.telemetry = t;
        self
    }

    /// Immutable access to a plugin by index (for test assertions on
    /// plugin-internal counters).
    pub fn plugin<P: Plugin + 'static>(&self, index: usize) -> Option<&P> {
        let p: &dyn Plugin = self.plugins.get(index)?.as_ref();
        (p as &dyn std::any::Any).downcast_ref::<P>()
    }

    fn alloc_id(&mut self) -> u16 {
        // Skip ids currently in flight.
        for _ in 0..=u16::MAX {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            if !self.id_to_gen.contains_key(&id) {
                return id;
            }
        }
        // detlint: allow(hot-panic) — the full u16 id space in flight
        // means the workload model is broken; reusing a live id would
        // silently cross-wire responses, which is worse than aborting.
        panic!("65535 concurrent upstream queries");
    }

    /// The upstream server a job is currently waiting on.
    fn current_target(job: &Job) -> IpAddr {
        match &job.kind {
            JobKind::Forward { upstream } => *upstream,
            JobKind::Recurse(r) => r.servers[r.server_idx],
        }
    }

    /// Tells every plugin how an upstream exchange ended (see
    /// [`Plugin::on_upstream_event`]) — one event per exchange, not per
    /// retry attempt.
    fn notify_upstream(&mut self, now: netsim::SimTime, upstream: IpAddr, ok: bool) {
        for p in &mut self.plugins {
            p.on_upstream_event(now, upstream, ok);
        }
    }

    fn ctx_for(&self, now: netsim::SimTime, reply_to: &Datagram) -> QueryCtx {
        QueryCtx {
            now,
            client: reply_to.src,
            client_port: reply_to.src_port,
            telemetry: self.telemetry.clone(),
        }
    }

    fn respond(&mut self, ctx: &mut NodeContext<'_>, reply_to: &Datagram, mut resp: Message) {
        // Echo the client's ECS option if the response does not already
        // carry one (RFC 7871 §7.2.2).
        if resp.edns.as_ref().and_then(|o| o.client_subnet()).is_none() {
            // Note: the reply template's payload still holds the query.
            if let Ok(q) = Message::decode(&reply_to.payload) {
                if let Some(cs) = q.client_subnet() {
                    resp.edns = Some(Opt::with_client_subnet(*cs));
                }
            }
        }
        match resp.encode() {
            Ok(bytes) => {
                ctx.send_datagram(reply_to.reply_with(bytes));
                self.responses_sent += 1;
            }
            Err(_) => {
                // Encoding failures are server bugs; surface as SERVFAIL.
                let mut sf = Message::response_to(&resp).with_rcode(Rcode::ServFail);
                sf.answers.clear();
                if let Ok(bytes) = sf.encode() {
                    ctx.send_datagram(reply_to.reply_with(bytes));
                    self.responses_sent += 1;
                }
            }
        }
    }

    fn upstream_query(&self, query: &Message, id: u16, client: IpAddr, qname: &Name) -> Message {
        let mut up = Message::query(id, qname.clone(), query.question().map_or(RrType::A, |q| q.qtype));
        up.header.recursion_desired = query.header.recursion_desired;
        // ECS: propagate the client's option (unless this server is a
        // hidden resolver that strips it), or synthesise one.
        if let (Some(cs), false) = (query.client_subnet(), self.config.strip_ecs) {
            up = up.with_client_subnet(*cs);
        } else if self.config.attach_ecs {
            let prefix = match client {
                IpAddr::V4(_) => 24,
                IpAddr::V6(_) => 56,
            };
            up = up.with_client_subnet(ClientSubnet::query(client, prefix));
        }
        up
    }

    fn send_upstream(
        &mut self,
        ctx: &mut NodeContext<'_>,
        gen: u64,
        upstream: IpAddr,
        msg: &Message,
    ) {
        let bytes = msg.encode().expect("upstream query encodes");
        ctx.send(upstream, 53, bytes);
        ctx.set_timer(self.config.upstream_timeout, TAG_PENDING | gen);
    }

    fn start_job(
        &mut self,
        ctx: &mut NodeContext<'_>,
        reply_to: Datagram,
        query: Message,
        kind: JobKind,
    ) {
        let gen = self.next_gen;
        self.next_gen += 1;
        let id = self.alloc_id();
        let (target, qname) = match &kind {
            JobKind::Forward { upstream } => (
                *upstream,
                query.question().map(|q| q.qname.clone()).unwrap_or_else(Name::root),
            ),
            JobKind::Recurse(r) => (r.servers[r.server_idx], r.current_name.clone()),
        };
        let up = self.upstream_query(&query, id, reply_to.src, &qname);
        self.telemetry.incr("dns.upstream.query");
        self.telemetry.mark(
            u64::from(query.header.id),
            ctx.now(),
            "server.forward",
            target.to_string(),
        );
        let job = Job {
            reply_to,
            query,
            kind,
            upstream_id: id,
            attempts_left: self.config.upstream_retries,
        };
        self.jobs.insert(gen, job);
        self.id_to_gen.insert(id, gen);
        self.send_upstream(ctx, gen, target, &up);
    }

    /// Re-sends the current hop of a job under a fresh transaction id.
    fn resend_job(&mut self, ctx: &mut NodeContext<'_>, gen: u64) {
        let id = self.alloc_id();
        let (old_id, target, qname, query, client) = {
            let Some(job) = self.jobs.get_mut(&gen) else {
                return;
            };
            let old = job.upstream_id;
            job.upstream_id = id;
            let (target, qname) = match &job.kind {
                JobKind::Forward { upstream } => (
                    *upstream,
                    job.query
                        .question()
                        .map(|q| q.qname.clone())
                        .unwrap_or_else(Name::root),
                ),
                JobKind::Recurse(r) => (r.servers[r.server_idx], r.current_name.clone()),
            };
            (old, target, qname, job.query.clone(), job.reply_to.src)
        };
        self.id_to_gen.remove(&old_id);
        let up = self.upstream_query(&query, id, client, &qname);
        self.id_to_gen.insert(id, gen);
        self.send_upstream(ctx, gen, target, &up);
    }

    fn finish_job(
        &mut self,
        ctx: &mut NodeContext<'_>,
        gen: u64,
        mut response: Message,
    ) {
        let Some(job) = self.jobs.remove(&gen) else {
            return;
        };
        self.id_to_gen.remove(&job.upstream_id);
        // Restore the client's transaction id and question.
        response.header.id = job.query.header.id;
        response.questions = job.query.questions.clone();
        let qctx = self.ctx_for(ctx.now(), &job.reply_to);
        for p in &mut self.plugins {
            p.on_response(&qctx, &mut response);
        }
        self.respond(ctx, &job.reply_to, response);
    }

    fn fail_job(&mut self, ctx: &mut NodeContext<'_>, gen: u64) {
        let Some(job) = self.jobs.get(&gen) else {
            return;
        };
        let resp = Message::response_to(&job.query).with_rcode(Rcode::ServFail);
        let reply_to = job.reply_to.clone();
        self.id_to_gen.remove(&job.upstream_id);
        self.jobs.remove(&gen);
        self.respond(ctx, &reply_to, resp);
    }

    fn process_query(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
        let query = match Message::decode(&dgram.payload) {
            Ok(m) => m,
            Err(_) => {
                self.malformed += 1;
                return;
            }
        };
        let qctx = self.ctx_for(ctx.now(), &dgram);
        let mut decision = PluginDecision::Continue;
        for p in &mut self.plugins {
            decision = p.on_query(&qctx, &query);
            if !matches!(decision, PluginDecision::Continue) {
                break;
            }
        }
        match decision {
            PluginDecision::Respond(mut resp) => {
                resp.header.id = query.header.id;
                self.respond(ctx, &dgram, resp);
            }
            PluginDecision::Forward { upstream } => {
                self.start_job(ctx, dgram, query, JobKind::Forward { upstream });
            }
            PluginDecision::Recurse { roots } => {
                let qname = query
                    .question()
                    .map(|q| q.qname.clone())
                    .unwrap_or_else(Name::root);
                let job = RecurseJob {
                    servers: roots.clone(),
                    roots,
                    server_idx: 0,
                    current_name: qname,
                    cname_count: 0,
                    acc: Vec::new(),
                };
                self.start_job(ctx, dgram, query, JobKind::Recurse(job));
            }
            PluginDecision::Ignore => {
                self.queries_ignored += 1;
            }
            PluginDecision::Continue => {
                // Off the end of the chain: refuse.
                let resp = Message::response_to(&query).with_rcode(Rcode::Refused);
                self.respond(ctx, &dgram, resp);
            }
        }
    }

    fn handle_upstream_response(&mut self, ctx: &mut NodeContext<'_>, msg: Message) {
        let Some(&gen) = self.id_to_gen.get(&msg.header.id) else {
            return; // late or spoofed; drop
        };
        if let Some(job) = self.jobs.get(&gen) {
            let target = Self::current_target(job);
            self.notify_upstream(ctx.now(), target, true);
        }
        enum Act {
            Finish(Message),
            FailHard,
            TryNextServer,
            Rehop,
        }
        let act = {
            let job = self.jobs.get_mut(&gen).expect("job for live id");
            match &mut job.kind {
                JobKind::Forward { .. } => Act::Finish(msg),
                JobKind::Recurse(r) => {
                    let qtype = job.query.question().map_or(RrType::A, |q| q.qtype);
                    if msg.header.rcode == Rcode::NxDomain {
                        let mut resp = msg;
                        let mut answers = std::mem::take(&mut r.acc);
                        answers.extend(std::mem::take(&mut resp.answers));
                        resp.answers = answers;
                        Act::Finish(resp)
                    } else if msg.header.rcode != Rcode::NoError {
                        // Treat as a dead server: try the next one.
                        Act::TryNextServer
                    } else if msg.answers.iter().any(|rec| rec.rrtype() == qtype) {
                        let mut resp = msg;
                        let mut answers = std::mem::take(&mut r.acc);
                        answers.extend(std::mem::take(&mut resp.answers));
                        resp.answers = answers;
                        Act::Finish(resp)
                    } else if let Some(c) = msg
                        .answers
                        .iter()
                        .find(|rec| rec.rrtype() == RrType::Cname)
                        .cloned()
                    {
                        // CNAME without the final type: chase it.
                        if r.cname_count >= 8 {
                            Act::FailHard
                        } else {
                            r.cname_count += 1;
                            if let dns_wire::RData::Cname(target) = &c.rdata {
                                r.current_name = target.clone();
                            }
                            r.acc.push(c);
                            r.servers = r.roots.clone();
                            r.server_idx = 0;
                            Act::Rehop
                        }
                    } else {
                        let glue: Vec<IpAddr> = msg
                            .additionals
                            .iter()
                            .filter_map(|rec| rec.rdata.as_a().map(IpAddr::V4))
                            .collect();
                        if !msg.authorities.is_empty() && !glue.is_empty() {
                            // Referral: follow the glue.
                            r.servers = glue;
                            r.server_idx = 0;
                            Act::Rehop
                        } else {
                            // NoData or glueless referral (not built in
                            // this workspace's topologies): return what
                            // we have.
                            let mut resp = msg;
                            let mut answers = std::mem::take(&mut r.acc);
                            answers.extend(std::mem::take(&mut resp.answers));
                            resp.answers = answers;
                            Act::Finish(resp)
                        }
                    }
                }
            }
        };
        match act {
            Act::Finish(resp) => self.finish_job(ctx, gen, resp),
            Act::FailHard => self.fail_job(ctx, gen),
            Act::TryNextServer => self.advance_or_fail(ctx, gen),
            Act::Rehop => self.rehop(ctx, gen),
        }
    }

    /// Sends the next hop of a recursion under a fresh id, resetting the
    /// retry budget.
    fn rehop(&mut self, ctx: &mut NodeContext<'_>, gen: u64) {
        if let Some(job) = self.jobs.get_mut(&gen) {
            job.attempts_left = self.config.upstream_retries;
        }
        self.resend_job(ctx, gen);
    }

    /// Tries the next server in a recursion's current set, or fails.
    fn advance_or_fail(&mut self, ctx: &mut NodeContext<'_>, gen: u64) {
        let advanced = {
            let Some(job) = self.jobs.get_mut(&gen) else {
                return;
            };
            match &mut job.kind {
                JobKind::Forward { .. } => false,
                JobKind::Recurse(r) => {
                    if r.server_idx + 1 < r.servers.len() {
                        r.server_idx += 1;
                        true
                    } else {
                        false
                    }
                }
            }
        };
        if advanced {
            self.rehop(ctx, gen);
        } else {
            self.fail_job(ctx, gen);
        }
    }
}

impl NodeBehavior for DnsServer {
    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
        // Responses to our upstream queries come back on ephemeral ports.
        if dgram.dst_port != self.config.port {
            if let Ok(msg) = Message::decode(&dgram.payload) {
                if msg.header.is_response {
                    self.handle_upstream_response(ctx, msg);
                    return;
                }
            }
            self.malformed += 1;
            return;
        }
        // A query (or a response mistakenly sent to port 53 — ignore).
        let has_ecs = Message::decode(&dgram.payload)
            .ok()
            .filter(|m| !m.header.is_response)
            .map(|m| m.client_subnet().is_some());
        let Some(has_ecs) = has_ecs else {
            self.malformed += 1;
            return;
        };
        self.queries_received += 1;
        let mut work = self.config.processing.sample(ctx.rng());
        if has_ecs {
            work += self.config.ecs_processing.sample(ctx.rng());
        }
        let delay = if self.config.single_worker {
            // Queue behind whatever the worker is already doing.
            let now = ctx.now();
            let start = self.busy_until.max(now);
            self.busy_until = start + work;
            self.busy_until - now
        } else {
            work
        };
        let key = self.next_inbox;
        self.next_inbox += 1;
        self.inbox.insert(key, dgram);
        ctx.set_timer(delay, TAG_INBOX | key);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, data: u64) {
        let payload = data & !TAG_MASK;
        match data & TAG_MASK {
            TAG_INBOX => {
                if let Some(dgram) = self.inbox.remove(&payload) {
                    self.process_query(ctx, dgram);
                }
            }
            TAG_PENDING => {
                let gen = payload;
                let retry = match self.jobs.get_mut(&gen) {
                    Some(job) if job.attempts_left > 0 => {
                        job.attempts_left -= 1;
                        true
                    }
                    Some(_) => false,
                    None => return, // already completed
                };
                self.upstream_timeouts += 1;
                self.telemetry.incr("dns.upstream.timeout");
                if retry {
                    self.telemetry.incr("dns.upstream.retry");
                    self.resend_job(ctx, gen);
                } else {
                    // Retry budget exhausted in silence: the upstream is
                    // presumed dead. Let the plugins know before the job
                    // fails over or SERVFAILs.
                    if let Some(job) = self.jobs.get(&gen) {
                        let target = Self::current_target(job);
                        self.notify_upstream(ctx.now(), target, false);
                    }
                    self.advance_or_fail(ctx, gen);
                }
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, _ctx: &mut NodeContext<'_>) {
        // Cold start after a crash: every queued query and in-flight
        // upstream exchange lived in process memory and is gone. The
        // cumulative counters survive — they model external scraping, not
        // process state — and clients see silence for anything dropped.
        self.inbox.clear();
        self.jobs.clear();
        self.id_to_gen.clear();
        self.busy_until = netsim::SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugins::AuthoritativePlugin;
    use crate::zone::Zone;
    use netsim::{Network, NodeId};
    use std::net::Ipv4Addr;

    struct Probe {
        server: IpAddr,
        payloads: Vec<Vec<u8>>,
        replies: Vec<Message>,
    }
    impl NodeBehavior for Probe {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            for p in self.payloads.clone() {
                ctx.send(self.server, 53, p);
            }
        }
        fn on_datagram(&mut self, _ctx: &mut NodeContext<'_>, dgram: Datagram) {
            if let Ok(m) = Message::decode(&dgram.payload) {
                self.replies.push(m);
            }
        }
    }

    fn world(plugins: Vec<Box<dyn Plugin>>, payloads: Vec<Vec<u8>>) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(5);
        let server = net.add_node(
            "server",
            ["10.0.0.1".parse::<IpAddr>().unwrap()],
            DnsServer::new(ServerConfig::default(), plugins),
        );
        let probe = net.add_node(
            "probe",
            ["10.0.0.2".parse::<IpAddr>().unwrap()],
            Probe {
                server: "10.0.0.1".parse().unwrap(),
                payloads,
                replies: vec![],
            },
        );
        net.connect(
            probe,
            server,
            netsim::LinkProfile::with_latency(Latency::ConstantMs(1.0)),
        );
        net.run();
        (net, server, probe)
    }

    #[test]
    fn garbage_counts_as_malformed_and_gets_no_reply() {
        let (net, server, probe) = world(vec![], vec![vec![0xDE, 0xAD], vec![]]);
        assert_eq!(net.behavior::<DnsServer>(server).malformed, 2);
        assert!(net.behavior::<Probe>(probe).replies.is_empty());
    }

    #[test]
    fn empty_plugin_chain_refuses() {
        let q = Message::query(7, Name::parse("x.test").unwrap(), RrType::A);
        let (net, server, probe) = world(vec![], vec![q.encode().unwrap()]);
        let replies = &net.behavior::<Probe>(probe).replies;
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].header.rcode, Rcode::Refused);
        assert_eq!(replies[0].header.id, 7);
        assert_eq!(net.behavior::<DnsServer>(server).responses_sent, 1);
    }

    #[test]
    fn response_id_and_question_echo_the_query() {
        let mut zone = Zone::new(Name::parse("z.test").unwrap());
        zone.add_a(Name::parse("a.z.test").unwrap(), Ipv4Addr::new(4, 4, 4, 4), 60);
        let q = Message::query(0xABCD, Name::parse("a.z.test").unwrap(), RrType::A);
        let (net, _server, probe) = world(
            vec![Box::new(AuthoritativePlugin::new(vec![zone]))],
            vec![q.encode().unwrap()],
        );
        let replies = &net.behavior::<Probe>(probe).replies;
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].header.id, 0xABCD);
        assert_eq!(replies[0].questions, q.questions);
        assert!(replies[0].header.is_response);
    }

    #[test]
    fn responses_sent_to_the_service_port_are_ignored() {
        // A spoofed "response" aimed at port 53 must not crash or be
        // treated as a query.
        let mut resp = Message::query(9, Name::parse("x.test").unwrap(), RrType::A);
        resp.header.is_response = true;
        let (net, server, probe) = world(vec![], vec![resp.encode().unwrap()]);
        let s = net.behavior::<DnsServer>(server);
        assert_eq!(s.queries_received, 0);
        assert_eq!(s.malformed, 1);
        assert!(net.behavior::<Probe>(probe).replies.is_empty());
    }

    #[test]
    fn plugin_accessor_downcasts_by_index() {
        let server = DnsServer::new(
            ServerConfig::default(),
            vec![Box::new(crate::plugins::CachePlugin::new(8))],
        );
        assert!(server.plugin::<crate::plugins::CachePlugin>(0).is_some());
        assert!(server.plugin::<crate::plugins::ForwardPlugin>(0).is_none());
        assert!(server.plugin::<crate::plugins::CachePlugin>(1).is_none());
    }
}
