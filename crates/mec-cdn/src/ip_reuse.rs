//! §5's public-IP point: CDNs at MEC without dedicated public
//! addresses.
//!
//! *"The proposed design can help promote reuse of public IPs by
//! assigning the same public IP for CDN domains of the many CDN
//! customers"* — because clients only ever talk to ClusterIPs, one MEC
//! address can front every customer's domain, with the orchestrator's
//! routing (the fabric DNAT) demultiplexing behind it.
//! [`IpReusePlan`] wires N customer domains onto one shared Traffic
//! Router + cache service and accounts for the addresses a naive
//! deployment would have needed instead.

use dns_wire::Name;
use mec_orch::{Cluster, ServiceHandle, Visibility};
use std::net::IpAddr;

/// The outcome of planning N customer domains onto shared MEC services.
#[derive(Debug, Clone)]
pub struct IpReusePlan {
    /// The customer domains served.
    pub domains: Vec<Name>,
    /// The single client-visible resolver address (MEC L-DNS ClusterIP).
    pub ldns_ip: IpAddr,
    /// The single client-visible cache address (cache service
    /// ClusterIP) every domain's content is served from.
    pub cache_ip: IpAddr,
    /// Public IPs a per-customer deployment would need (L-DNS + C-DNS +
    /// one cache per customer, as §5 lists them).
    pub naive_public_ips: usize,
    /// Public IPs this plan needs.
    pub reused_public_ips: usize,
}

impl IpReusePlan {
    /// Exposes each of `domains` through the shared Traffic Router
    /// service in `cluster`, so they all resolve to one ClusterIP.
    pub fn apply(
        cluster: &mut Cluster,
        router_svc: &ServiceHandle,
        ldns_svc: &ServiceHandle,
        cache_svc: &ServiceHandle,
        domains: &[Name],
    ) -> IpReusePlan {
        for d in domains {
            cluster.expose_domain(router_svc, &d.to_string());
        }
        IpReusePlan {
            domains: domains.to_vec(),
            ldns_ip: ldns_svc.cluster_ip,
            cache_ip: cache_svc.cluster_ip,
            // Per §5: without reuse, each customer exposes its L-DNS,
            // C-DNS and cache host(s) — three addresses per customer.
            naive_public_ips: domains.len() * 3,
            // With the proposal, mobile clients interact with the MEC
            // L-DNS ClusterIP and the cache ClusterIP only.
            reused_public_ips: 2,
        }
    }

    /// How many addresses the proposal saves.
    pub fn saved(&self) -> usize {
        self.naive_public_ips.saturating_sub(self.reused_public_ips)
    }

    /// Verifies, against the cluster registry, that every domain
    /// resolves publicly to the same address. Returns that address.
    pub fn verify(&self, cluster: &Cluster) -> Result<IpAddr, String> {
        let reg = cluster.registry();
        let mut shared: Option<IpAddr> = None;
        for d in &self.domains {
            match reg.lookup(&d.to_string(), Visibility::Public) {
                Some(ip) => match shared {
                    None => shared = Some(ip),
                    Some(prev) if prev == ip => {}
                    Some(prev) => {
                        return Err(format!("{d} resolves to {ip}, others to {prev}"));
                    }
                },
                None => return Err(format!("{d} is not publicly resolvable")),
            }
        }
        shared.ok_or_else(|| "no domains in the plan".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_orch::ClusterConfig;
    use netsim::{Network, NodeBehavior};

    struct Nop;
    impl NodeBehavior for Nop {}

    #[test]
    fn many_domains_share_one_cluster_ip() {
        let mut net = Network::new(1);
        let mut cluster = Cluster::new(&mut net, "mec", ClusterConfig::default());
        cluster.add_namespace("cdn", Visibility::Public);
        let tr_pod = cluster.launch_pod(&mut net, "cdn", "tr", Nop);
        let ldns_pod = cluster.launch_pod(&mut net, "cdn", "ldns", Nop);
        let cache_pod = cluster.launch_pod(&mut net, "cdn", "cache", Nop);
        let tr = cluster.create_service(&mut net, "cdn", "trafficrouter", &[tr_pod]);
        let ldns = cluster.create_service(&mut net, "cdn", "coredns", &[ldns_pod]);
        let cache = cluster.create_service(&mut net, "cdn", "cache", &[cache_pod]);
        let domains: Vec<Name> = (0..5)
            .map(|i| Name::parse(&format!("video.customer{i}.mycdn.ciab.test")).unwrap())
            .collect();
        let plan = IpReusePlan::apply(&mut cluster, &tr, &ldns, &cache, &domains);
        assert_eq!(plan.reused_public_ips, 2);
        assert_eq!(plan.naive_public_ips, 15);
        assert_eq!(plan.saved(), 13);
        let shared = plan.verify(&cluster).expect("all domains resolvable");
        assert_eq!(shared, tr.cluster_ip);
    }

    #[test]
    fn verify_detects_divergence() {
        let mut net = Network::new(2);
        let mut cluster = Cluster::new(&mut net, "mec", ClusterConfig::default());
        cluster.add_namespace("cdn", Visibility::Public);
        let a = cluster.launch_pod(&mut net, "cdn", "a", Nop);
        let b = cluster.launch_pod(&mut net, "cdn", "b", Nop);
        let svc_a = cluster.create_service(&mut net, "cdn", "svc-a", &[a]);
        let svc_b = cluster.create_service(&mut net, "cdn", "svc-b", &[b]);
        let domains = vec![
            Name::parse("one.mycdn.ciab.test").unwrap(),
            Name::parse("two.mycdn.ciab.test").unwrap(),
        ];
        let plan = IpReusePlan::apply(&mut cluster, &svc_a, &svc_a, &svc_a, &domains);
        // Sabotage: point the second domain somewhere else.
        cluster.expose_domain(&svc_b, "two.mycdn.ciab.test");
        assert!(plan.verify(&cluster).is_err());
    }

    #[test]
    fn verify_detects_missing_domains() {
        let mut net = Network::new(3);
        let mut cluster = Cluster::new(&mut net, "mec", ClusterConfig::default());
        cluster.add_namespace("cdn", Visibility::Public);
        let a = cluster.launch_pod(&mut net, "cdn", "a", Nop);
        let svc = cluster.create_service(&mut net, "cdn", "svc", &[a]);
        let plan = IpReusePlan {
            domains: vec![Name::parse("ghost.mycdn.ciab.test").unwrap()],
            ldns_ip: svc.cluster_ip,
            cache_ip: svc.cluster_ip,
            naive_public_ips: 3,
            reused_public_ips: 2,
        };
        assert!(plan.verify(&cluster).is_err());
    }
}
