//! The measurement methodology of §4: `dig` from the client plus
//! `tcpdump` at the P-GW.
//!
//! [`QueryClient`] is the UE-side behavior issuing a fixed schedule of
//! DNS queries; [`split_wireless`] reconstructs, from the P-GW tap, how
//! much of each lookup was spent on the wireless segment (UE ↔ P-GW)
//! versus in the resolvers behind it — the two stack segments of every
//! Figure 5 bar.

use dns_server::{QueryOutcome, SendStrategy, StubEngine};
use dns_wire::{ClientSubnet, Name, RrType};
use netsim::{
    Datagram, NodeBehavior, NodeContext, SimDuration, SimTime, TapDirection, TapRecord,
    TimerToken,
};

/// One scheduled query for a [`QueryClient`].
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// When to issue, relative to simulation start.
    pub at: SimDuration,
    /// Name to resolve.
    pub name: Name,
    /// Dispatch strategy.
    pub strategy: SendStrategy,
    /// Optional ECS option.
    pub ecs: Option<ClientSubnet>,
}

/// A completed query with its absolute timestamps (needed for the
/// tap-based split).
#[derive(Debug, Clone)]
pub struct MeasuredQuery {
    /// The stub outcome (rtt, answers, responder...).
    pub outcome: QueryOutcome,
    /// When the query was first transmitted.
    pub started: SimTime,
    /// When the accepted answer arrived.
    pub finished: SimTime,
}

/// UE-side behavior: issues a schedule of queries and records outcomes.
pub struct QueryClient {
    engine: StubEngine,
    plan: Vec<PlannedQuery>,
    /// Completed queries in completion order.
    pub measured: Vec<MeasuredQuery>,
}

impl QueryClient {
    /// A client that will run `plan`.
    pub fn new(plan: Vec<PlannedQuery>) -> Self {
        QueryClient {
            engine: StubEngine::new(),
            plan,
            measured: Vec::new(),
        }
    }

    /// Mutable access to the embedded engine (timeout tuning).
    pub fn engine_mut(&mut self) -> &mut StubEngine {
        &mut self.engine
    }
}

impl NodeBehavior for QueryClient {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        for (i, q) in self.plan.iter().enumerate() {
            ctx.set_timer(q.at, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _t: TimerToken, data: u64) {
        if StubEngine::owns_timer(data) {
            if let Some(outcome) = self.engine.on_timer(ctx, data) {
                let finished = ctx.now();
                self.measured.push(MeasuredQuery {
                    started: SimTime::from_nanos(
                        finished.as_nanos().saturating_sub(outcome.rtt.as_nanos()),
                    ),
                    finished,
                    outcome,
                });
            }
            return;
        }
        let q = self.plan[data as usize].clone();
        self.engine
            .issue(ctx, q.name, RrType::A, q.strategy, q.ecs, data);
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
        if let Some(outcome) = self.engine.on_datagram(ctx, &dgram) {
            let finished = ctx.now();
            self.measured.push(MeasuredQuery {
                started: SimTime::from_nanos(finished.as_nanos() - outcome.rtt.as_nanos()),
                finished,
                outcome,
            });
        }
    }
}

/// The wireless/resolver decomposition of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitLatency {
    /// Total lookup time.
    pub total: SimDuration,
    /// Time on the wireless segment: client → P-GW plus P-GW → client.
    pub wireless: SimDuration,
    /// Time behind the P-GW (resolvers, core links).
    pub resolver: SimDuration,
}

/// Splits each measured query into wireless and resolver components
/// using the P-GW's packet tap records (enable a tap on the P-GW before
/// running, then drain it with [`netsim::Network::take_tap`]). Queries whose
/// packets never crossed the tap (e.g. answered before the bearer
/// opened) are skipped.
pub fn split_wireless(tap: &[TapRecord], measured: &[MeasuredQuery]) -> Vec<SplitLatency> {
    let mut out = Vec::new();
    for m in measured {
        if m.outcome.timed_out {
            continue;
        }
        // The stub reuses the query id for the whole exchange; find the
        // first outbound crossing after `started` and the last inbound
        // crossing before `finished`.
        let id = query_id_of(m);
        let Some(id) = id else { continue };
        let t_query_at_pgw = tap
            .iter()
            .filter(|r| {
                r.id_hint == Some(id)
                    && r.direction == TapDirection::Forward
                    && r.dst_port == 53
                    && r.time >= m.started
                    && r.time <= m.finished
            })
            .map(|r| r.time)
            .min();
        let t_resp_at_pgw = tap
            .iter()
            .filter(|r| {
                r.id_hint == Some(id)
                    && r.src_port == 53
                    && r.time >= m.started
                    && r.time <= m.finished
            })
            .map(|r| r.time)
            .max();
        let (Some(t1), Some(t2)) = (t_query_at_pgw, t_resp_at_pgw) else {
            continue;
        };
        let total = m.finished - m.started;
        let wireless = (t1 - m.started) + (m.finished.since(t2));
        out.push(SplitLatency {
            total,
            wireless,
            resolver: total.saturating_sub(wireless),
        });
    }
    out
}

/// The trace-derived twin of [`split_wireless`]: the same per-query
/// wireless/resolver decomposition, but computed from the P-GW's
/// telemetry breadcrumbs (`pgw.uplink` / `pgw.downlink` marks dropped
/// by `ran_sim::PgwNat`) instead of the packet tap.
///
/// The two are independent observation paths over the same virtual
/// packets — the in-simulator analogue of the paper's `dig` vs
/// `tcpdump` cross-check — so their results must agree; the end-to-end
/// tests assert they do within a millisecond per query. The selection
/// logic deliberately mirrors [`split_wireless`]: earliest uplink
/// crossing and latest downlink crossing within the query's
/// `[started, finished]` window.
pub fn split_from_traces(
    telemetry: &netsim::Telemetry,
    measured: &[MeasuredQuery],
) -> Vec<SplitLatency> {
    let mut out = Vec::new();
    for m in measured {
        if m.outcome.timed_out {
            continue;
        }
        let Some(id) = query_id_of(m) else { continue };
        let Some(trace) = telemetry.trace(u64::from(id)) else {
            continue;
        };
        let window = Some((m.started, m.finished));
        let t1 = trace.first_at("pgw.uplink", window);
        let t2 = trace.last_at("pgw.downlink", window);
        let (Some(t1), Some(t2)) = (t1, t2) else {
            continue;
        };
        let total = m.finished - m.started;
        let wireless = (t1 - m.started) + (m.finished.since(t2));
        out.push(SplitLatency {
            total,
            wireless,
            resolver: total.saturating_sub(wireless),
        });
    }
    out
}

/// The DNS transaction id the stub used for this query. The engine
/// allocates ids sequentially starting at 1, in issue order; outcomes
/// do not carry the id, so we recover it from the tag order. To keep
/// this robust the engine-level invariant is checked by tests.
fn query_id_of(m: &MeasuredQuery) -> Option<u16> {
    // tag N is the N-th issued query → id N+1 (ids start at 1).
    u16::try_from(m.outcome.tag + 1).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_id_mapping_matches_stub_allocation() {
        // StubEngine allocates 1, 2, 3, ... for tags 0, 1, 2, ...
        let mk = |tag| MeasuredQuery {
            outcome: QueryOutcome {
                tag,
                name: Name::parse("x.test").unwrap(),
                qtype: RrType::A,
                rcode: dns_wire::Rcode::NoError,
                addrs: vec![],
                cnames: vec![],
                rtt: SimDuration::ZERO,
                responder: None,
                timed_out: false,
                used_fallback: false,
                ecs_scope: None,
            },
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
        };
        assert_eq!(query_id_of(&mk(0)), Some(1));
        assert_eq!(query_id_of(&mk(41)), Some(42));
    }
}
