//! Parallel experiment runner.
//!
//! Experiments in this crate decompose into *trials* — independent
//! world-build-and-run units (one access network of Figure 2, one
//! deployment of Figure 5, one role row of Table 2). The runner fans
//! trials over scoped worker threads while keeping results
//! **bit-identical regardless of thread count**:
//!
//! * every trial gets its own seed, derived from the experiment's root
//!   seed and the trial index by [`derive_seed`] — no RNG is ever
//!   shared or handed off between trials;
//! * results are merged in trial-index order, not completion order.
//!
//! So `threads = 1` and `threads = 64` produce byte-identical
//! serialized figures, and the thread count is purely a wall-clock
//! knob (`repro --threads N`). `tests/determinism.rs` locks this in.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// splitmix64's output mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for one trial from the experiment's root seed.
///
/// splitmix-style: the root is advanced by `trial_idx + 1` golden-ratio
/// increments and mixed, so nearby roots and nearby indices still land
/// in uncorrelated parts of the sequence. Crucially this depends only
/// on `(root, trial_idx)` — never on which thread runs the trial or in
/// what order — which is what makes parallel runs reproducible.
pub fn derive_seed(root: u64, trial_idx: u64) -> u64 {
    splitmix64(root.wrapping_add(trial_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Fans independent trials over scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    /// A serial runner (`threads = 1`).
    fn default() -> Self {
        Runner { threads: 1 }
    }
}

impl Runner {
    /// A runner with a fixed worker count. `0` means "one worker per
    /// available CPU".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Runner { threads }
    }

    /// The worker count trials fan out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trials` invocations of `f` and returns their results in
    /// trial-index order.
    ///
    /// `f(i)` must depend only on `i` (seed anything random with
    /// [`derive_seed`]); the runner guarantees the returned `Vec` is
    /// `[f(0), f(1), …]` no matter how trials were scheduled.
    pub fn run<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(trials);
        if workers <= 1 {
            return (0..trials).map(f).collect();
        }

        // Workers claim trial indices from a shared counter (cheap
        // dynamic load balancing — trials vary a lot in cost) and push
        // `(idx, result)` pairs; the index-ordered merge below restores
        // the deterministic order.
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(trials));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // AcqRel: claiming index i must be ordered
                        // against the other workers' claims — a Relaxed
                        // RMW still hands out unique indices, but gives
                        // no happens-before edge for anything the claim
                        // is taken to imply about shared state.
                        let i = next.fetch_add(1, Ordering::AcqRel);
                        if i >= trials {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    // A worker that panicked mid-trial poisons `done`;
                    // the surviving workers' results are still wanted
                    // (the merge below asserts completeness anyway).
                    done.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .append(&mut local);
                });
            }
        });

        let mut indexed = done
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        indexed.sort_by_key(|(i, _)| *i);
        // Hard assert, not debug_assert: a lost trial would silently
        // truncate (and index-shift) results in release builds, which is
        // exactly the build `repro` campaigns run under.
        assert_eq!(
            indexed.len(),
            trials,
            "runner lost trials: merged {} of {}",
            indexed.len(),
            trials
        );
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// [`Runner::run`] with the per-trial seed already derived: `f`
    /// receives `(trial_idx, derive_seed(root, trial_idx))`.
    pub fn run_seeded<T, F>(&self, trials: usize, root: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        self.run(trials, |i| f(i, derive_seed(root, i as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_depends_on_both_inputs() {
        let s = derive_seed(2020, 0);
        assert_ne!(s, derive_seed(2020, 1));
        assert_ne!(s, derive_seed(2021, 0));
        // Stable across calls.
        assert_eq!(s, derive_seed(2020, 0));
    }

    #[test]
    fn derive_seed_has_no_trivial_xor_collisions() {
        // The old `seed ^ idx` scheme mapped trial 0 to the root seed
        // itself; the splitmix derivation must not.
        for root in [0u64, 1, 2020, u64::MAX] {
            assert_ne!(derive_seed(root, 0), root);
        }
    }

    #[test]
    fn results_are_index_ordered_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 33] {
            let got = Runner::new(threads).run(100, |i| i * i);
            assert_eq!(got, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn seeded_runs_are_identical_across_thread_counts() {
        let serial = Runner::new(1).run_seeded(40, 7, |i, s| (i, s));
        for threads in [2, 5, 16] {
            assert_eq!(Runner::new(threads).run_seeded(40, 7, |i, s| (i, s)), serial);
        }
    }

    #[test]
    fn every_trial_is_merged_exactly_once() {
        // Regression guard for the completeness check: the merged vector
        // must contain f(i) for *every* index exactly once, at every
        // thread count (including workers > trials). A lost trial now
        // panics even in release builds instead of silently truncating.
        for threads in [1, 2, 4, 7, 32] {
            for trials in [0, 1, 5, 19] {
                let got = Runner::new(threads).run(trials, |i| i);
                assert_eq!(got.len(), trials);
                assert_eq!(got, (0..trials).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(Runner::new(0).threads() >= 1);
    }

    #[test]
    fn uneven_trial_costs_still_merge_in_order() {
        let got = Runner::new(4).run(16, |i| {
            // Early trials sleep longest so completion order inverts
            // submission order.
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
