//! The six DNS deployments of Figure 5, on one simulated LTE testbed.
//!
//! Every deployment shares the same substrate — a UE on an srsLTE-like
//! radio, a NextEPC-like core, a Kubernetes-like MEC cluster hosting the
//! ATC-like CDN cache — and differs only in where the L-DNS and C-DNS
//! run:
//!
//! | # | Label                    | L-DNS            | C-DNS            |
//! |---|--------------------------|------------------|------------------|
//! | 1 | MEC L-DNS w/ MEC C-DNS   | MEC cluster      | MEC cluster      |
//! | 2 | MEC L-DNS w/ LAN C-DNS   | MEC cluster      | LAN next to MEC  |
//! | 3 | MEC L-DNS w/ WAN C-DNS   | MEC cluster      | metro WAN        |
//! | 4 | LAN L-DNS                | behind the core  | far cloud        |
//! | 5 | Google DNS               | public anycast   | far cloud        |
//! | 6 | Cloudflare DNS           | public anycast   | far cloud        |
//!
//! Bars 2–3 match the ETSI/3GPP proposals (L-DNS at MEC, CDN resolver
//! elsewhere); bar 1 is the paper's proposal; bars 4–6 are today's
//! options. Link distances are calibrated so the *means* land near the
//! paper's (29.4 / 34.8 / 60.9 / 114.6 / 112.5 / 285.7 ms), with ~20 ms
//! of every bar being the LTE wireless component.

use crate::measurement::{MeasuredQuery, PlannedQuery, QueryClient, SplitLatency};
use cdn_sim::{Catalog, CacheServer, Origin, Selection, TrafficRouterPlugin};
use dns_server::plugins::{CachePlugin, KubernetesPlugin, StubDomainPlugin};
use dns_server::{DnsServer, SendStrategy, ServerConfig};
use dns_wire::{ClientSubnet, Name};
use mec_orch::{Cluster, ClusterConfig, Visibility};
use netsim::{Latency, LinkProfile, Network, NodeId, SimDuration, Telemetry};
use ran_sim::{EpcConfig, PgwNat, RadioProfile, Ran};
use std::net::{IpAddr, Ipv4Addr};
use workload::sites::{MEC_CDN_DOMAIN, MEC_CDN_ZONE};

/// Which Figure 5 bar to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentKind {
    /// The proposal: both L-DNS and C-DNS inside the MEC cluster.
    MecLdnsMecCdns,
    /// ETSI/3GPP-style: L-DNS at MEC, C-DNS on the adjacent LAN.
    MecLdnsLanCdns,
    /// L-DNS at MEC, C-DNS across a metro WAN.
    MecLdnsWanCdns,
    /// Today's cellular default: L-DNS on a LAN behind the core.
    LanLdns,
    /// Public resolver: Google DNS.
    GoogleDns,
    /// Public resolver: Cloudflare DNS.
    CloudflareDns,
}

impl DeploymentKind {
    /// All six, in Figure 5 order.
    pub fn all() -> [DeploymentKind; 6] {
        [
            DeploymentKind::MecLdnsMecCdns,
            DeploymentKind::MecLdnsLanCdns,
            DeploymentKind::MecLdnsWanCdns,
            DeploymentKind::LanLdns,
            DeploymentKind::GoogleDns,
            DeploymentKind::CloudflareDns,
        ]
    }

    /// The bar label as printed in Figure 5.
    pub fn label(self) -> &'static str {
        match self {
            DeploymentKind::MecLdnsMecCdns => "MEC L-DNS w/ MEC C-DNS",
            DeploymentKind::MecLdnsLanCdns => "MEC L-DNS w/ LAN C-DNS",
            DeploymentKind::MecLdnsWanCdns => "MEC L-DNS w/ WAN C-DNS",
            DeploymentKind::LanLdns => "LAN L-DNS",
            DeploymentKind::GoogleDns => "Google DNS",
            DeploymentKind::CloudflareDns => "Cloudflare DNS",
        }
    }

    /// The paper's measured mean for this bar, in ms (Figure 5).
    pub fn paper_mean_ms(self) -> f64 {
        match self {
            DeploymentKind::MecLdnsMecCdns => 29.4,
            DeploymentKind::MecLdnsLanCdns => 34.8,
            DeploymentKind::MecLdnsWanCdns => 60.9,
            DeploymentKind::LanLdns => 114.6,
            DeploymentKind::GoogleDns => 112.5,
            DeploymentKind::CloudflareDns => 285.7,
        }
    }

    /// True when ECS applies (the paper evaluates ECS on the first
    /// three deployments).
    pub fn supports_ecs(self) -> bool {
        matches!(
            self,
            DeploymentKind::MecLdnsMecCdns
                | DeploymentKind::MecLdnsLanCdns
                | DeploymentKind::MecLdnsWanCdns
        )
    }
}

/// Testbed knobs shared by all deployments.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Air interface (LTE for the paper's numbers; NR for the 5G
    /// projection).
    pub radio: RadioProfile,
    /// Number of `dig`s. The paper uses "at least 12"; default 25.
    pub queries: usize,
    /// Spacing between digs — kept above the C-DNS answer TTL so every
    /// dig exercises the full path, as the testbed's did.
    pub spacing: SimDuration,
    /// Attach an ECS option to every query and enable ECS processing at
    /// the resolvers (§4's ECS experiment).
    pub ecs: bool,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 2020,
            radio: RadioProfile::Lte,
            queries: 25,
            spacing: SimDuration::from_secs(35),
            ecs: false,
        }
    }
}

/// Calibrated one-way link distances (ms) for the testbed.
mod dist {
    /// P-GW ↔ MEC cluster fabric.
    pub const PGW_TO_MEC: (f64, f64) = (0.3, 0.6);
    /// MEC ↔ adjacent LAN host (deployment 2's C-DNS).
    pub const LAN_ADJACENT: (f64, f64) = (2.3, 2.9);
    /// MEC ↔ metro WAN host (deployment 3's C-DNS).
    pub const WAN_METRO: (f64, f64) = (14.8, 16.8);
    /// P-GW ↔ the carrier LAN L-DNS (deployment 4).
    pub const LAN_LDNS: (f64, f64) = (1.0, 1.6);
    /// Resolver ↔ far-cloud C-DNS (deployments 4–6).
    pub const FAR_CLOUD: (f64, f64) = (40.0, 44.0);
    /// P-GW ↔ Google anycast front end.
    pub const GOOGLE: (f64, f64) = (12.0, 14.5);
    /// Google ↔ the CDN's C-DNS.
    pub const GOOGLE_TO_CDNS: (f64, f64) = (26.0, 30.0);
    /// P-GW ↔ Cloudflare anycast front end (slow from the paper's
    /// vantage point).
    pub const CLOUDFLARE: (f64, f64) = (52.0, 58.0);
    /// Cloudflare ↔ the CDN's C-DNS.
    pub const CLOUDFLARE_TO_CDNS: (f64, f64) = (70.0, 76.0);
}

fn link(range: (f64, f64)) -> LinkProfile {
    LinkProfile::with_latency(Latency::UniformMs(range.0, range.1))
}

/// Containerized MEC DNS processing (CoreDNS / Traffic Router pods).
fn mec_dns_config(ecs: bool) -> ServerConfig {
    ServerConfig {
        processing: Latency::skewed(2.0, 3.3, 1.0),
        ecs_processing: Latency::UniformMs(0.1, 0.5),
        attach_ecs: ecs,
        ..ServerConfig::default()
    }
}

/// A big shared resolver (Google/Cloudflare front end).
fn public_resolver_config(ecs: bool) -> ServerConfig {
    ServerConfig {
        processing: Latency::skewed(2.0, 3.5, 1.5),
        ecs_processing: Latency::UniformMs(0.1, 0.5),
        attach_ecs: ecs,
        ..ServerConfig::default()
    }
}

/// A built deployment ready to run.
pub struct Deployment {
    /// Which bar this is.
    pub kind: DeploymentKind,
    /// The whole simulated world.
    pub net: Network,
    /// UE node carrying the [`QueryClient`].
    pub client: NodeId,
    /// The tapped P-GW.
    pub pgw: NodeId,
    /// Resolver address the UE queries.
    pub resolver_addr: IpAddr,
    /// The MEC cache address correct answers must name.
    pub expected_cache: Ipv4Addr,
    /// Content available in the CDN (for end-to-end fetches).
    pub catalog: Catalog,
    /// P-GW tap records from the last [`Deployment::run_measure`] call
    /// (exportable with [`netsim::pcap`] when the tap captured
    /// payloads).
    pub last_tap: Vec<netsim::TapRecord>,
    /// The shared telemetry store every instrumented component of this
    /// world records into: the UE's stub engine, every DNS server and
    /// its plugins, the RAN and the P-GW NAT.
    pub telemetry: Telemetry,
}

impl Deployment {
    /// Builds the world for one Figure 5 bar.
    pub fn build(kind: DeploymentKind, cfg: &TestbedConfig) -> Deployment {
        let mut net = Network::new(cfg.seed);
        // One telemetry store for the whole world; every component below
        // records into a clone of this handle.
        let tel = Telemetry::new();

        // ---- RAN + EPC --------------------------------------------------
        let mut ran = Ran::build(&mut net, EpcConfig::default());
        ran.set_telemetry(tel.clone());
        ran.add_enb(&mut net);
        let pgw = ran.epc.pgw;
        net.enable_tap(pgw);
        // The P-GW drops DNS-crossing breadcrumbs alongside the tap.
        net.behavior_mut::<PgwNat>(pgw).set_telemetry(tel.clone());

        // ---- MEC cluster with the CDN cache -----------------------------
        let mut cluster = Cluster::new(&mut net, "mec", ClusterConfig::default());
        cluster.add_namespace("cdn", Visibility::Public);
        cluster.add_namespace("kube-system", Visibility::Internal);
        cluster.attach_external(&mut net, pgw, link(dist::PGW_TO_MEC));

        let catalog = Catalog::new();
        for seg in 0..8 {
            catalog.add(&format!("{MEC_CDN_DOMAIN}./seg-{seg}"), 200_000);
        }
        // Origin in the far cloud (misses pay a real price).
        let origin_ip: IpAddr = "198.51.100.80".parse().unwrap();
        let origin = net.add_node("origin", [origin_ip], Origin::new(catalog.clone()));
        net.connect(pgw, origin, link(dist::FAR_CLOUD));
        net.add_default_route(origin, pgw);

        let cache_pod_behavior = |addr: IpAddr| CacheServer::new(addr, 64_000_000, Some(origin_ip));
        // Pod IP is assigned by the cluster; build the behavior after we
        // know it by launching with a placeholder-free two-step: compute
        // the next pod ip deterministically via a probe launch.
        // Simpler: CacheServer takes its address for index bookkeeping
        // only; pass the service ClusterIP later. Use a fixed dummy that
        // is corrected by the service ClusterIP being the public face.
        let cache_pod = cluster.launch_pod(
            &mut net,
            "cdn",
            "cache-0",
            cache_pod_behavior("0.0.0.0".parse().unwrap()),
        );
        let cache_svc =
            cluster.create_service(&mut net, "cdn", "cache", std::slice::from_ref(&cache_pod));
        let IpAddr::V4(cache_v4) = cache_svc.cluster_ip else {
            unreachable!("cluster allocates IPv4 service addresses");
        };
        let expected_cache = cache_v4;

        // ---- C-DNS (the Traffic Router) ---------------------------------
        let router_plugin = || {
            let mut p = TrafficRouterPlugin::new(
                Name::parse(MEC_CDN_ZONE).unwrap(),
                vec![Name::parse(MEC_CDN_DOMAIN).unwrap()],
                vec![cache_v4],
                Selection::ConsistentHash,
            );
            p.ttl = 30;
            p
        };

        let cdns_addr: IpAddr = match kind {
            DeploymentKind::MecLdnsMecCdns => {
                let cdns_pod = cluster.launch_pod(
                    &mut net,
                    "cdn",
                    "trafficrouter",
                    DnsServer::new(mec_dns_config(cfg.ecs), vec![Box::new(router_plugin())])
                        .with_telemetry(tel.clone()),
                );
                let svc =
                    cluster.create_service(&mut net, "cdn", "trafficrouter", &[cdns_pod]);
                svc.cluster_ip
            }
            DeploymentKind::MecLdnsLanCdns => {
                let addr: IpAddr = "192.0.2.10".parse().unwrap();
                let node = net.add_node(
                    "cdns-lan",
                    [addr],
                    DnsServer::new(mec_dns_config(cfg.ecs), vec![Box::new(router_plugin())])
                        .with_telemetry(tel.clone()),
                );
                net.connect(pgw, node, link(dist::LAN_ADJACENT));
                net.add_default_route(node, pgw);
                addr
            }
            DeploymentKind::MecLdnsWanCdns => {
                let addr: IpAddr = "192.0.2.20".parse().unwrap();
                let node = net.add_node(
                    "cdns-wan",
                    [addr],
                    DnsServer::new(mec_dns_config(cfg.ecs), vec![Box::new(router_plugin())])
                        .with_telemetry(tel.clone()),
                );
                net.connect(pgw, node, link(dist::WAN_METRO));
                net.add_default_route(node, pgw);
                addr
            }
            DeploymentKind::LanLdns
            | DeploymentKind::GoogleDns
            | DeploymentKind::CloudflareDns => {
                // The commercial C-DNS lives in the far cloud; resolvers
                // reach it over their own paths (wired below).
                "192.0.2.30".parse().unwrap()
            }
        };

        // ---- L-DNS / the resolver the UE queries ------------------------
        let resolver_addr: IpAddr = match kind {
            DeploymentKind::MecLdnsMecCdns
            | DeploymentKind::MecLdnsLanCdns
            | DeploymentKind::MecLdnsWanCdns => {
                let ldns_pod = cluster.launch_pod(
                    &mut net,
                    "kube-system",
                    "coredns",
                    DnsServer::new(
                        mec_dns_config(cfg.ecs),
                        vec![
                            Box::new(KubernetesPlugin::new(
                                cluster.registry(),
                                vec![Name::parse("cluster.local").unwrap()],
                                vec![
                                    "10.244.0.0/16".parse().unwrap(),
                                    "10.96.0.0/16".parse().unwrap(),
                                ],
                            )),
                            Box::new(StubDomainPlugin::new(vec![(
                                Name::parse(MEC_CDN_ZONE).unwrap(),
                                cdns_addr,
                            )])),
                        ],
                    )
                    .with_telemetry(tel.clone()),
                );
                let svc = cluster.create_service(&mut net, "kube-system", "coredns", &[ldns_pod]);
                svc.cluster_ip
            }
            DeploymentKind::LanLdns => {
                let far_cdns = build_far_cdns(&mut net, pgw, router_plugin(), cfg, &tel);
                let addr: IpAddr = "10.44.9.1".parse().unwrap();
                let node = net.add_node(
                    "lan-ldns",
                    [addr],
                    DnsServer::new(
                        mec_dns_config(false),
                        vec![
                            Box::new(CachePlugin::new(4096)),
                            Box::new(StubDomainPlugin::new(vec![(
                                Name::parse(MEC_CDN_ZONE).unwrap(),
                                far_cdns,
                            )])),
                        ],
                    )
                    .with_telemetry(tel.clone()),
                );
                net.connect(pgw, node, link(dist::LAN_LDNS));
                net.add_default_route(node, pgw);
                addr
            }
            DeploymentKind::GoogleDns => {
                build_public_resolver(
                    &mut net,
                    pgw,
                    "google-dns",
                    "8.8.8.8",
                    dist::GOOGLE,
                    dist::GOOGLE_TO_CDNS,
                    router_plugin(),
                    cfg,
                    &tel,
                )
            }
            DeploymentKind::CloudflareDns => {
                build_public_resolver(
                    &mut net,
                    pgw,
                    "cloudflare-dns",
                    "1.1.1.1",
                    dist::CLOUDFLARE,
                    dist::CLOUDFLARE_TO_CDNS,
                    router_plugin(),
                    cfg,
                    &tel,
                )
            }
        };

        // ---- The UE -----------------------------------------------------
        let plan: Vec<PlannedQuery> = (0..cfg.queries)
            .map(|i| PlannedQuery {
                // First query after attach completes.
                at: SimDuration::from_millis(200)
                    + SimDuration::from_nanos(cfg.spacing.as_nanos() * i as u64),
                name: Name::parse(MEC_CDN_DOMAIN).unwrap(),
                strategy: SendStrategy::Unicast(resolver_addr),
                ecs: cfg.ecs.then(|| {
                    // The UE discloses its own /24 (it knows its bearer
                    // address even though the P-GW will NAT it).
                    ClientSubnet::query("10.45.0.0".parse().unwrap(), 24)
                }),
            })
            .collect();
        let mut query_client = QueryClient::new(plan);
        query_client.engine_mut().set_telemetry(tel.clone());
        let ue = ran.attach_ue(&mut net, "ue", query_client, 0, cfg.radio);

        Deployment {
            kind,
            net,
            client: ue.node,
            pgw,
            resolver_addr,
            expected_cache,
            catalog,
            last_tap: Vec::new(),
            telemetry: tel,
        }
    }

    /// Runs the whole schedule and returns per-query measurements plus
    /// the wireless/resolver split from the P-GW tap.
    pub fn run_measure(&mut self) -> (Vec<MeasuredQuery>, Vec<SplitLatency>) {
        self.net.run();
        let measured = self.net.behavior::<QueryClient>(self.client).measured.clone();
        self.last_tap = self.net.take_tap(self.pgw);
        let split = crate::measurement::split_wireless(&self.last_tap, &measured);
        (measured, split)
    }
}

/// The far-cloud C-DNS used by deployments 4–6.
fn build_far_cdns(
    net: &mut Network,
    pgw: NodeId,
    router: TrafficRouterPlugin,
    cfg: &TestbedConfig,
    tel: &Telemetry,
) -> IpAddr {
    let addr: IpAddr = "192.0.2.30".parse().unwrap();
    let node = net.add_node(
        "cdns-cloud",
        [addr],
        DnsServer::new(mec_dns_config(cfg.ecs), vec![Box::new(router)])
            .with_telemetry(tel.clone()),
    );
    net.connect(pgw, node, link(dist::FAR_CLOUD));
    net.add_default_route(node, pgw);
    addr
}

/// A public anycast resolver at `resolver_dist` from the P-GW, with the
/// CDN's C-DNS `cdns_dist` farther on.
#[allow(clippy::too_many_arguments)]
fn build_public_resolver(
    net: &mut Network,
    pgw: NodeId,
    name: &str,
    addr: &str,
    resolver_dist: (f64, f64),
    cdns_dist: (f64, f64),
    router: TrafficRouterPlugin,
    cfg: &TestbedConfig,
    tel: &Telemetry,
) -> IpAddr {
    // The C-DNS, reachable from the resolver only (distances are from
    // the resolver's vantage point).
    let cdns_addr: IpAddr = "192.0.2.30".parse().unwrap();
    let cdns = net.add_node(
        &format!("{name}-cdns"),
        [cdns_addr],
        DnsServer::new(mec_dns_config(cfg.ecs), vec![Box::new(router)])
            .with_telemetry(tel.clone()),
    );
    let resolver_ip: IpAddr = addr.parse().unwrap();
    let resolver = net.add_node(
        name,
        [resolver_ip],
        DnsServer::new(
            public_resolver_config(cfg.ecs),
            vec![
                Box::new(CachePlugin::new(1 << 16)),
                Box::new(StubDomainPlugin::new(vec![(
                    Name::parse(MEC_CDN_ZONE).unwrap(),
                    cdns_addr,
                )])),
            ],
        )
        .with_telemetry(tel.clone()),
    );
    net.connect(pgw, resolver, link(resolver_dist));
    net.connect(resolver, cdns, link(cdns_dist));
    net.add_default_route(resolver, pgw);
    net.add_default_route(cdns, resolver);
    resolver_ip
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Samples;

    fn mean_of(kind: DeploymentKind, cfg: &TestbedConfig) -> (f64, f64, usize) {
        let mut d = Deployment::build(kind, cfg);
        let (measured, split) = d.run_measure();
        let mut total = Samples::new();
        let mut wireless = Samples::new();
        for s in &split {
            total.record(s.total);
            wireless.record(s.wireless);
        }
        let answered = measured.iter().filter(|m| !m.outcome.timed_out).count();
        (
            total.summarize().map(|s| s.trimmed_mean_ms).unwrap_or(f64::NAN),
            wireless.summarize().map(|s| s.trimmed_mean_ms).unwrap_or(f64::NAN),
            answered,
        )
    }

    #[test]
    fn all_deployments_resolve_every_query() {
        let cfg = TestbedConfig {
            queries: 12,
            ..TestbedConfig::default()
        };
        for kind in DeploymentKind::all() {
            let mut d = Deployment::build(kind, &cfg);
            let (measured, split) = d.run_measure();
            assert_eq!(measured.len(), 12, "{:?} lost queries", kind);
            assert!(
                measured.iter().all(|m| !m.outcome.timed_out),
                "{kind:?} had timeouts"
            );
            assert_eq!(split.len(), 12, "{kind:?} tap split incomplete");
        }
    }

    #[test]
    fn every_answer_names_the_mec_cache() {
        // §4: "the DNS query was always correctly resolved to the
        // appropriate CDN cache server at the MEC."
        let cfg = TestbedConfig {
            queries: 12,
            ..TestbedConfig::default()
        };
        for kind in [
            DeploymentKind::MecLdnsMecCdns,
            DeploymentKind::MecLdnsLanCdns,
            DeploymentKind::MecLdnsWanCdns,
        ] {
            let mut d = Deployment::build(kind, &cfg);
            let expected = d.expected_cache;
            let (measured, _) = d.run_measure();
            for m in &measured {
                assert_eq!(m.outcome.addrs, vec![expected], "{kind:?}");
            }
        }
    }

    #[test]
    fn figure5_ordering_holds() {
        let cfg = TestbedConfig::default();
        let means: Vec<(DeploymentKind, f64)> = DeploymentKind::all()
            .into_iter()
            .map(|k| (k, mean_of(k, &cfg).0))
            .collect();
        let get = |k: DeploymentKind| means.iter().find(|(kk, _)| *kk == k).unwrap().1;
        let mec = get(DeploymentKind::MecLdnsMecCdns);
        let lan_cdns = get(DeploymentKind::MecLdnsLanCdns);
        let wan_cdns = get(DeploymentKind::MecLdnsWanCdns);
        let lan_ldns = get(DeploymentKind::LanLdns);
        let google = get(DeploymentKind::GoogleDns);
        let cloudflare = get(DeploymentKind::CloudflareDns);
        assert!(mec < lan_cdns, "{mec} !< {lan_cdns}");
        assert!(lan_cdns < wan_cdns, "{lan_cdns} !< {wan_cdns}");
        assert!(wan_cdns < google, "{wan_cdns} !< {google}");
        assert!(wan_cdns < lan_ldns, "{wan_cdns} !< {lan_ldns}");
        assert!(google < cloudflare);
        assert!(lan_ldns < cloudflare);
        // Headline: up to ~9x vs the slowest current option.
        let speedup = cloudflare / mec;
        assert!(
            (7.0..13.0).contains(&speedup),
            "speedup {speedup} out of the paper's ballpark"
        );
        // MEC beats the ideal ETSI-style LAN C-DNS by ~5 ms.
        let gap = lan_cdns - mec;
        assert!((3.0..8.0).contains(&gap), "LAN gap {gap}ms");
    }

    #[test]
    fn means_land_near_paper_values() {
        let cfg = TestbedConfig::default();
        for kind in DeploymentKind::all() {
            let (mean, _, _) = mean_of(kind, &cfg);
            let target = kind.paper_mean_ms();
            let ratio = mean / target;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{kind:?}: measured {mean:.1}ms vs paper {target}ms (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn wireless_component_is_about_twenty_ms() {
        let cfg = TestbedConfig::default();
        let (total, wireless, _) = mean_of(DeploymentKind::MecLdnsMecCdns, &cfg);
        assert!(
            (18.0..26.0).contains(&wireless),
            "wireless component {wireless}ms should be ≈20ms"
        );
        assert!(wireless / total > 0.6, "LTE must dominate the MEC bar");
    }

    #[test]
    fn nr_projection_shrinks_the_mec_bar() {
        let lte = mean_of(DeploymentKind::MecLdnsMecCdns, &TestbedConfig::default()).0;
        let nr = mean_of(
            DeploymentKind::MecLdnsMecCdns,
            &TestbedConfig {
                radio: RadioProfile::Nr,
                ..TestbedConfig::default()
            },
        )
        .0;
        assert!(
            nr < lte / 2.0,
            "5G projection: NR {nr}ms should be far below LTE {lte}ms"
        );
        assert!(nr < 20.0, "NR MEC-CDN must fit the sub-20ms envelope");
    }

    #[test]
    fn ecs_factors_are_near_one() {
        for kind in [
            DeploymentKind::MecLdnsMecCdns,
            DeploymentKind::MecLdnsLanCdns,
            DeploymentKind::MecLdnsWanCdns,
        ] {
            let plain = mean_of(kind, &TestbedConfig::default()).0;
            let ecs = mean_of(
                kind,
                &TestbedConfig {
                    ecs: true,
                    ..TestbedConfig::default()
                },
            )
            .0;
            let factor = ecs / plain;
            assert!(
                (0.93..1.15).contains(&factor),
                "{kind:?} ECS factor {factor} outside the paper's ~1.0 band"
            );
        }
    }

    #[test]
    fn ecs_answers_remain_correct() {
        let cfg = TestbedConfig {
            ecs: true,
            queries: 12,
            ..TestbedConfig::default()
        };
        let mut d = Deployment::build(DeploymentKind::MecLdnsMecCdns, &cfg);
        let expected = d.expected_cache;
        let (measured, _) = d.run_measure();
        for m in &measured {
            assert_eq!(m.outcome.addrs, vec![expected]);
            assert_eq!(m.outcome.ecs_scope, Some(24), "C-DNS must scope the answer");
        }
    }
}
