//! The orchestrator's DoS switch.
//!
//! §3: *"The MEC orchestrator, which has access to monitoring statistics
//! of the ingress network load to the MEC DNS, can simply switch (or
//! only unicast) to the provider's L-DNS during high ingress (above a
//! threshold)."* [`DosPolicy`] is that controller: it samples the
//! cluster's [`mec_orch::IngressMonitor`] on a fixed period and writes
//! the resolver clients should use into a shared
//! [`ResolverDirective`].

use mec_orch::IngressMonitor;
use netsim::{NodeBehavior, NodeContext, SimDuration, TimerToken};
use std::cell::RefCell;
use std::net::IpAddr;
use std::rc::Rc;

/// The resolver clients should currently use — published by the
/// orchestrator, consulted by UEs at each query (e.g. by
/// [`DirectedClient`]).
#[derive(Debug, Clone)]
pub struct ResolverDirective {
    inner: Rc<RefCell<IpAddr>>,
}

impl ResolverDirective {
    /// A directive initially pointing at `resolver`.
    pub fn new(resolver: IpAddr) -> Self {
        ResolverDirective {
            inner: Rc::new(RefCell::new(resolver)),
        }
    }

    /// The current resolver.
    pub fn get(&self) -> IpAddr {
        *self.inner.borrow()
    }

    /// Publishes a new resolver.
    pub fn set(&self, resolver: IpAddr) {
        *self.inner.borrow_mut() = resolver;
    }
}

/// The ingress-threshold controller, run as a node inside the MEC.
pub struct DosPolicy {
    monitor: IngressMonitor,
    /// Monitoring key of the MEC DNS service (`namespace/name`).
    service_key: String,
    directive: ResolverDirective,
    mec_dns: IpAddr,
    provider_ldns: IpAddr,
    /// Queries/second above which the MEC DNS is considered under
    /// attack.
    pub threshold_qps: f64,
    /// Rate below which service returns to the MEC DNS (hysteresis;
    /// must be ≤ `threshold_qps`).
    pub recover_qps: f64,
    /// Sampling period.
    pub period: SimDuration,
    /// Window the rate is computed over.
    pub window: SimDuration,
    /// Consecutive over-threshold samples required before mitigating.
    /// The default of 1 reacts on the first hot sample; raise it so a
    /// single bursty window (or a fault-induced retry storm) does not
    /// flap every UE over to the provider L-DNS.
    pub arm_after: u32,
    /// Consecutive under-`recover_qps` samples required before moving
    /// service back to the MEC DNS.
    pub disarm_after: u32,
    /// Number of mitigations activated.
    pub activations: u64,
    /// Number of recoveries.
    pub recoveries: u64,
    mitigating: bool,
    over_streak: u32,
    under_streak: u32,
}

impl DosPolicy {
    /// A policy switching `directive` between `mec_dns` and
    /// `provider_ldns` based on the ingress rate of `service_key`.
    pub fn new(
        monitor: IngressMonitor,
        service_key: &str,
        directive: ResolverDirective,
        mec_dns: IpAddr,
        provider_ldns: IpAddr,
        threshold_qps: f64,
    ) -> Self {
        DosPolicy {
            monitor,
            service_key: service_key.to_string(),
            directive,
            mec_dns,
            provider_ldns,
            threshold_qps,
            recover_qps: threshold_qps * 0.5,
            period: SimDuration::from_millis(500),
            window: SimDuration::from_secs(2),
            arm_after: 1,
            disarm_after: 1,
            activations: 0,
            recoveries: 0,
            mitigating: false,
            over_streak: 0,
            under_streak: 0,
        }
    }

    /// Is the policy currently directing UEs at the provider L-DNS?
    pub fn mitigating(&self) -> bool {
        self.mitigating
    }
}

impl NodeBehavior for DosPolicy {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        ctx.set_timer(self.period, 0);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _t: TimerToken, _d: u64) {
        let rate = self
            .monitor
            .rate_per_sec(&self.service_key, ctx.now(), self.window);
        if !self.mitigating {
            if rate > self.threshold_qps {
                self.over_streak += 1;
                if self.over_streak >= self.arm_after {
                    self.over_streak = 0;
                    self.mitigating = true;
                    self.activations += 1;
                    self.directive.set(self.provider_ldns);
                }
            } else {
                self.over_streak = 0;
            }
        } else if rate < self.recover_qps {
            self.under_streak += 1;
            if self.under_streak >= self.disarm_after {
                self.under_streak = 0;
                self.mitigating = false;
                self.recoveries += 1;
                self.directive.set(self.mec_dns);
            }
        } else {
            self.under_streak = 0;
        }
        ctx.set_timer(self.period, 0);
    }
}

/// A UE client that consults the directive at every query — the
/// directive-following counterpart of [`crate::QueryClient`].
pub struct DirectedClient {
    engine: dns_server::StubEngine,
    directive: ResolverDirective,
    name: dns_wire::Name,
    interval: SimDuration,
    remaining: usize,
    /// (issue time, resolver used) per query, in issue order.
    pub issued_to: Vec<(netsim::SimTime, IpAddr)>,
}

impl DirectedClient {
    /// Queries `name` every `interval`, `count` times, at whichever
    /// resolver the directive names.
    pub fn new(
        directive: ResolverDirective,
        name: dns_wire::Name,
        interval: SimDuration,
        count: usize,
    ) -> Self {
        DirectedClient {
            engine: dns_server::StubEngine::new(),
            directive,
            name,
            interval,
            remaining: count,
            issued_to: Vec::new(),
        }
    }

    /// Completed outcomes.
    pub fn outcomes(&self) -> &[dns_server::QueryOutcome] {
        &self.engine.outcomes
    }
}

impl NodeBehavior for DirectedClient {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        ctx.set_timer(self.interval, 1);
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _t: TimerToken, data: u64) {
        if dns_server::StubEngine::owns_timer(data) {
            self.engine.on_timer(ctx, data);
            return;
        }
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let resolver = self.directive.get();
        self.issued_to.push((ctx.now(), resolver));
        let tag = self.issued_to.len() as u64 - 1;
        self.engine.issue(
            ctx,
            self.name.clone(),
            dns_wire::RrType::A,
            dns_server::SendStrategy::Unicast(resolver),
            None,
            tag,
        );
        ctx.set_timer(self.interval, 1);
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: netsim::Datagram) {
        self.engine.on_datagram(ctx, &dgram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    #[test]
    fn directive_is_shared() {
        let d = ResolverDirective::new("10.0.0.1".parse().unwrap());
        let d2 = d.clone();
        d.set("10.0.0.2".parse().unwrap());
        assert_eq!(d2.get(), "10.0.0.2".parse::<IpAddr>().unwrap());
    }

    #[test]
    fn policy_switches_and_recovers_on_rates() {
        // Drive the policy directly (no network needed): feed the
        // monitor a burst, then silence.
        let monitor = IngressMonitor::default();
        let directive = ResolverDirective::new("10.96.0.1".parse().unwrap());
        let mec: IpAddr = "10.96.0.1".parse().unwrap();
        let provider: IpAddr = "10.44.9.1".parse().unwrap();
        let mut policy = DosPolicy::new(
            monitor.clone(),
            "cdn/dns",
            directive.clone(),
            mec,
            provider,
            100.0,
        );
        // 500 arrivals in 1 s → 250 qps over the 2 s window.
        for i in 0..500 {
            monitor.record("cdn/dns", SimTime::ZERO + SimDuration::from_millis(i * 2));
        }
        // Emulate a tick at t=1 s.
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        let rate = monitor.rate_per_sec("cdn/dns", now, policy.window);
        assert!(rate > policy.threshold_qps);
        // Tick logic, extracted: rates above threshold mitigate.
        policy.mitigating = false;
        if rate > policy.threshold_qps {
            policy.mitigating = true;
            policy.activations += 1;
            policy.directive.set(policy.provider_ldns);
        }
        assert_eq!(directive.get(), provider);
        // After quiet time the window rate drops and service recovers.
        let later = now + SimDuration::from_secs(10);
        let rate = monitor.rate_per_sec("cdn/dns", later, policy.window);
        assert!(rate < policy.recover_qps);
        if policy.mitigating && rate < policy.recover_qps {
            policy.mitigating = false;
            policy.recoveries += 1;
            policy.directive.set(policy.mec_dns);
        }
        assert_eq!(directive.get(), mec);
        assert_eq!(policy.activations, 1);
        assert_eq!(policy.recoveries, 1);
    }

    #[test]
    fn arming_hysteresis_needs_consecutive_hot_samples() {
        let monitor = IngressMonitor::default();
        let mec: IpAddr = "10.96.0.1".parse().unwrap();
        let provider: IpAddr = "10.44.9.1".parse().unwrap();
        let directive = ResolverDirective::new(mec);
        let mut policy = DosPolicy::new(
            monitor.clone(),
            "cdn/dns",
            directive.clone(),
            mec,
            provider,
            100.0,
        );
        policy.period = SimDuration::from_millis(100);
        policy.window = SimDuration::from_secs(1);
        policy.arm_after = 3;
        policy.disarm_after = 2;

        // 200 arrivals in the first 100 ms → 200 qps over the 1 s
        // window until they age out at t ≈ 1.1 s, then 0 qps.
        for i in 0..200u64 {
            monitor.record(
                "cdn/dns",
                SimTime::ZERO + SimDuration::from_micros(i * 500),
            );
        }

        let mut net = netsim::Network::new(3);
        let node = net.add_node("dos", ["10.96.2.1".parse::<IpAddr>().unwrap()], policy);

        // Sample the directive between ticks (ticks land on multiples of
        // 100 ms, samples on odd 50 ms offsets).
        let samples: Rc<RefCell<Vec<IpAddr>>> = Rc::new(RefCell::new(Vec::new()));
        for at_ms in [250u64, 350, 1150, 1250] {
            let samples = Rc::clone(&samples);
            let directive = directive.clone();
            net.schedule_call(SimDuration::from_millis(at_ms), move |_| {
                samples.borrow_mut().push(directive.get());
            });
        }
        net.run_until(netsim::SimTime::ZERO + SimDuration::from_millis(1300));

        // Two hot ticks (100, 200 ms) are not enough; the third (300 ms)
        // arms. One cold tick (1.1 s) is not enough; the second (1.2 s)
        // recovers.
        assert_eq!(*samples.borrow(), vec![mec, provider, provider, mec]);
        let policy = net.behavior::<DosPolicy>(node);
        assert_eq!(policy.activations, 1);
        assert_eq!(policy.recoveries, 1);
        assert!(!policy.mitigating());
    }
}
