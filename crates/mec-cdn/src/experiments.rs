//! Turn-key reproductions of every table and figure in the paper.
//!
//! Each function builds the relevant world, runs it, and returns
//! serializable figure data (see `workload::figures`). The `repro`
//! binary prints these; integration tests assert their shape; the
//! Criterion benches time them.

use crate::deployments::{Deployment, DeploymentKind, TestbedConfig};
use crate::dos::{DirectedClient, DosPolicy, ResolverDirective};
use crate::ecosystem::{Ecosystem, Role};
use crate::fallback::P1Policy;
use crate::measurement::{PlannedQuery, QueryClient};
use crate::runner::Runner;
use crate::telemetry::{TelemetryReport, TrialTelemetry};
use cdn_sim::MultiCdnRouter;
use dns_server::plugins::{AuthoritativePlugin, CachePlugin, ScopePlugin};
use dns_server::{DnsServer, SendStrategy, ServerConfig, Zone};
use dns_wire::Name;
use netsim::{Latency, LinkProfile, Network, NodeId, Samples, SimDuration};
use ran_sim::AccessKind;
use std::collections::{BTreeMap, HashMap};
use std::net::{IpAddr, Ipv4Addr};
use workload::figures::{Bar, DistributionFigure, Figure, StackedBar};
use workload::sites::{PoolWeight, Site, MEC_CDN_ZONE, SITES};

/// Renders Table 1.
pub fn table1() -> String {
    let mut out = String::from("== Table 1 — tested CDN domains ==\n");
    for s in SITES {
        out.push_str(&format!("{:<14} {}\n", s.name, s.domain));
    }
    out
}

/// Renders Table 2. Serial wrapper around [`table2_with`].
pub fn table2() -> String {
    table2_with(&Runner::default())
}

/// [`table2`] with the role rows rendered as runner trials (merged in
/// role order — the table reads identically at any thread count).
pub fn table2_with(runner: &Runner) -> String {
    let roles = Role::all();
    let rows = runner.run(roles.len(), |i| {
        let r = roles[i];
        format!("{:<18} {}\n", r.to_string(), r.responsibility())
    });
    let mut out = String::from("== Table 2 — entities and roles in MEC-CDN ==\n");
    for row in rows {
        out.push_str(&row);
    }
    let eco = Ecosystem::mec_cdn_proposal();
    out.push_str("proposal: ");
    for e in &eco.entities {
        out.push_str(&format!(
            "[{}: {}] ",
            e.name,
            e.roles
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("+")
        ));
    }
    out.push('\n');
    out
}

/// The Figure 2/3 world for one access network: client → gateway →
/// L-DNS (cache+forward) → commercial C-DNS, with a crowd keeping the
/// L-DNS cache warm so the measured client sees the cached-A-record
/// behaviour §2 describes.
struct AccessWorld {
    net: Network,
    client: NodeId,
}

/// Queries per (site, access network) for Figures 2/3.
pub const FIG2_QUERIES_PER_SITE: usize = 25;

fn build_access_world(kind: AccessKind, seed: u64) -> AccessWorld {
    let mut net = Network::new(seed);
    // Commercial C-DNS far in the cloud, configured with the Figure 3
    // per-resolver weights.
    let ldns_ip: IpAddr = match kind {
        AccessKind::WiredCampus => "10.10.0.53",
        AccessKind::HomeWifi => "10.20.0.53",
        AccessKind::CellularMobile => "10.30.0.53",
    }
    .parse()
    .unwrap();
    let net_idx = match kind {
        AccessKind::WiredCampus => 0,
        AccessKind::HomeWifi => 1,
        AccessKind::CellularMobile => 2,
    };
    let mut router = MultiCdnRouter::new();
    for site in SITES {
        let name = Name::parse(site.domain).unwrap();
        let pools = site
            .pools
            .iter()
            .map(|p| cdn_sim::PoolChoice::new(p.provider, p.pool, p.weights[net_idx]))
            .collect();
        router.set_policy(&name, ldns_ip, pools);
    }
    let cdns_ip: IpAddr = "192.0.2.53".parse().unwrap();
    let cdns = net.add_node(
        "commercial-cdns",
        [cdns_ip],
        DnsServer::new(
            ServerConfig {
                processing: Latency::skewed(1.0, 2.0, 0.8),
                ..ServerConfig::default()
            },
            vec![Box::new(router)],
        ),
    );

    // The L-DNS for this access network.
    let ldns = net.add_node(
        "ldns",
        [ldns_ip],
        DnsServer::new(
            ServerConfig {
                processing: Latency::skewed(0.5, 1.2, 0.5),
                ..ServerConfig::default()
            },
            vec![
                Box::new(CachePlugin::new(4096)),
                Box::new(dns_server::plugins::ForwardPlugin::new(cdns_ip)),
            ],
        ),
    );
    // L-DNS ↔ commercial C-DNS: a real WAN distance.
    net.connect(ldns, cdns, LinkProfile::with_latency(Latency::skewed(20.0, 26.0, 5.0)));
    net.add_default_route(cdns, ldns);

    // Gateway between the device and the resolver network.
    let gw = net.add_node(
        "gateway",
        [match kind {
            AccessKind::WiredCampus => "10.10.0.1",
            AccessKind::HomeWifi => "10.20.0.1",
            AccessKind::CellularMobile => "10.30.0.1",
        }
        .parse::<IpAddr>()
        .unwrap()],
        Nop,
    );
    net.connect(gw, ldns, kind.ldns_link());
    net.add_default_route(ldns, gw);

    // The crowd: a busy population behind the same L-DNS that keeps the
    // popular domains' A records warm (why "the A records TTL never
    // expires at L-DNS" in §2).
    let crowd_plan: Vec<PlannedQuery> = (0..360)
        .flat_map(|round| {
            SITES.iter().enumerate().map(move |(i, site)| PlannedQuery {
                // One crowd query per site per second (staggered): an
                // expired entry is re-fetched within ~1 s, so the
                // measured client almost always sees a warm cache —
                // §2's "the cached A records are used for lookup".
                at: SimDuration::from_millis(1_000 * round + 200 * i as u64),
                name: Name::parse(site.domain).unwrap(),
                strategy: SendStrategy::Unicast(ldns_ip),
                ecs: None,
            })
        })
        .collect();
    let crowd = net.add_node(
        "crowd",
        ["10.99.0.7".parse::<IpAddr>().unwrap()],
        QueryClient::new(crowd_plan),
    );
    net.connect(crowd, ldns, LinkProfile::with_latency(Latency::UniformMs(0.5, 1.5)));

    // The measured device, behind its access link.
    let plan: Vec<PlannedQuery> = (0..FIG2_QUERIES_PER_SITE)
        .flat_map(|round| {
            SITES.iter().enumerate().map(move |(i, site)| PlannedQuery {
                at: SimDuration::from_millis(500 + 13_000 * round as u64 + 2_000 * i as u64),
                name: Name::parse(site.domain).unwrap(),
                strategy: SendStrategy::Unicast(ldns_ip),
                ecs: None,
            })
        })
        .collect();
    let client_ip: IpAddr = "172.16.0.10".parse().unwrap();
    let client = net.add_node("device", [client_ip], QueryClient::new(plan));
    net.connect(client, gw, kind.access_link());
    net.add_default_route(client, gw);
    net.add_default_route(gw, ldns);
    net.add_route(gw, netsim::Cidr::host(client_ip), client);

    AccessWorld { net, client }
}

struct Nop;
impl netsim::NodeBehavior for Nop {}

/// Runs the Figure 2 measurement. Returns one [`Figure`] whose bars are
/// `<site> / <access network>` — the fifteen bars of Figure 2 — plus
/// the per-answer data needed by Figure 3. Serial wrapper around
/// [`fig2_fig3_with`].
pub fn fig2_fig3(seed: u64) -> (Figure, Vec<DistributionFigure>) {
    fig2_fig3_with(seed, &Runner::default())
}

/// Per-site results of one access-network trial, in `SITES` order.
struct AccessTrial {
    /// `Bar` per site with at least one answered query.
    bars: Vec<Bar>,
    /// `(site name, pool label → percent)` per site.
    pools: Vec<(&'static str, Vec<(String, f64)>)>,
}

/// [`fig2_fig3`] with the access-network campaigns fanned out on
/// `runner` — one trial per [`AccessKind`], each on its own derived
/// seed, merged in access-kind order.
pub fn fig2_fig3_with(seed: u64, runner: &Runner) -> (Figure, Vec<DistributionFigure>) {
    let kinds = AccessKind::all();
    let trials = runner.run_seeded(kinds.len(), seed, |idx, trial_seed| {
        let kind = kinds[idx];
        let mut world = build_access_world(kind, trial_seed);
        world.net.run();
        let measured = world.net.behavior::<QueryClient>(world.client).measured.clone();
        let mut trial = AccessTrial {
            bars: Vec::new(),
            pools: Vec::new(),
        };
        for site in SITES {
            let name = Name::parse(site.domain).unwrap();
            let mut samples = Samples::new();
            // Ordered map: its iteration order reaches the report bytes.
            let mut pool_counts: BTreeMap<String, u64> = BTreeMap::new();
            let mut answered = 0u64;
            for m in measured.iter().filter(|m| m.outcome.name == name) {
                if m.outcome.timed_out {
                    continue;
                }
                samples.record(m.outcome.rtt);
                answered += 1;
                if let Some(addr) = m.outcome.addrs.first() {
                    let label = classify_pool(site, *addr);
                    *pool_counts.entry(label).or_insert(0) += 1;
                }
            }
            if let Some(summary) = samples.summarize() {
                trial.bars.push(Bar::from_summary(
                    format!("{} / {}", site.name, kind.label()),
                    &summary,
                ));
            }
            let pcts: Vec<(String, f64)> = pool_counts
                .into_iter()
                .map(|(k, v)| (k, 100.0 * v as f64 / answered.max(1) as f64))
                .collect();
            trial.pools.push((site.name, pcts));
        }
        trial
    });

    // Index-ordered merge: bars and distributions appear exactly as the
    // old serial loop emitted them.
    let mut fig2 = Figure::new(
        "fig2",
        "DNS lookup latency for CDN domains over three access networks",
    );
    // site → (access label, pool label → percent)
    type PoolPercents = Vec<(String, f64)>;
    let mut dist: HashMap<&'static str, Vec<(String, PoolPercents)>> = HashMap::new();
    for (kind, trial) in kinds.iter().zip(trials) {
        fig2.bars.extend(trial.bars);
        for (site_name, pcts) in trial.pools {
            dist.entry(site_name)
                .or_default()
                .push((kind.label().to_string(), pcts));
        }
    }

    let fig3: Vec<DistributionFigure> = SITES
        .iter()
        .map(|site| DistributionFigure {
            id: format!("fig3-{}", site.name.to_lowercase().replace('.', "")),
            title: format!("{} — answer distribution across cache pools", site.name),
            bars: dist.remove(site.name).unwrap_or_default(),
        })
        .collect();
    (fig2, fig3)
}

/// Classifies an answered address into the site's Figure 3 pool label
/// (most specific pool wins), or `"other"`.
pub fn classify_pool(site: &Site, addr: Ipv4Addr) -> String {
    let mut best: Option<&PoolWeight> = None;
    for p in site.pools {
        let cidr: netsim::Cidr = p.pool.parse().expect("valid pool");
        if cidr.contains(IpAddr::V4(addr)) {
            let better = match best {
                None => true,
                Some(b) => {
                    let bc: netsim::Cidr = b.pool.parse().unwrap();
                    cidr.prefix_len() > bc.prefix_len()
                }
            };
            if better {
                best = Some(p);
            }
        }
    }
    match best {
        Some(p) => format!("{} {}", p.provider, p.pool),
        None => "other".to_string(),
    }
}

/// Runs Figure 5: the six deployments, each split into wireless and
/// resolver components. Serial wrapper around [`fig5_with`].
pub fn fig5(cfg: &TestbedConfig) -> Figure {
    fig5_with(cfg, &Runner::default())
}

/// [`fig5`] with the six deployment campaigns fanned out on `runner` —
/// one trial per [`DeploymentKind`], each testbed seeded by
/// [`crate::derive_seed`] from `cfg.seed` and the deployment index,
/// merged in deployment order.
pub fn fig5_with(cfg: &TestbedConfig, runner: &Runner) -> Figure {
    fig5_telemetry_with(cfg, runner).0
}

/// [`fig5_with`] plus the per-trial telemetry artifact, computed in the
/// same single pass over the six deployment worlds. Trials run on
/// derived seeds and merge in deployment order, so both the figure and
/// the report are bit-identical at any thread count.
pub fn fig5_telemetry_with(cfg: &TestbedConfig, runner: &Runner) -> (Figure, TelemetryReport) {
    let kinds = DeploymentKind::all();
    let trials = runner.run_seeded(kinds.len(), cfg.seed, |idx, trial_seed| {
        let kind = kinds[idx];
        let trial_cfg = TestbedConfig {
            seed: trial_seed,
            ..cfg.clone()
        };
        let mut d = Deployment::build(kind, &trial_cfg);
        let (measured, split) = d.run_measure();
        let telemetry = TrialTelemetry::harvest(&d, trial_seed, &measured);
        let mut total = Samples::new();
        let mut wireless = Samples::new();
        for s in &split {
            total.record(s.total);
            wireless.record(s.wireless);
        }
        let t = total.summarize().expect("deployment produced samples");
        let w = wireless.summarize().expect("deployment produced samples");
        let bar = StackedBar {
            label: kind.label().to_string(),
            total_ms: t.trimmed_mean_ms,
            wireless_ms: w.trimmed_mean_ms,
            resolver_ms: t.trimmed_mean_ms - w.trimmed_mean_ms,
            min_ms: t.min_ms,
            max_ms: t.max_ms,
            samples: t.samples,
        };
        (bar, telemetry)
    });
    let mut bars = Vec::new();
    let mut report = TelemetryReport {
        seed: cfg.seed,
        trials: Vec::new(),
    };
    for (bar, telemetry) in trials {
        bars.push(bar);
        report.trials.push(telemetry);
    }
    let mut fig = Figure::new(
        "fig5",
        "DNS lookup latency on the LTE testbed for six resolver deployments",
    );
    fig.stacked = bars;
    let get = |label: &str| {
        fig.stacked
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.total_ms)
            .unwrap_or(f64::NAN)
    };
    let mec = get("MEC L-DNS w/ MEC C-DNS");
    fig.notes.push((
        "speedup_vs_worst".to_string(),
        get("Cloudflare DNS") / mec,
    ));
    fig.notes.push((
        "gap_vs_lan_cdns_ms".to_string(),
        get("MEC L-DNS w/ LAN C-DNS") - mec,
    ));
    (fig, report)
}

/// §4's ECS experiment: ratio of mean lookup latency with ECS to
/// without, for the first three deployments. Paper: ×1.01, ×1.08,
/// ×0.95.
pub fn ecs_experiment(seed: u64) -> Figure {
    let mut fig = Figure::new("ecs", "Effect of EDNS Client Subnet on lookup latency");
    for kind in [
        DeploymentKind::MecLdnsMecCdns,
        DeploymentKind::MecLdnsLanCdns,
        DeploymentKind::MecLdnsWanCdns,
    ] {
        let mean = |ecs: bool| {
            let cfg = TestbedConfig {
                seed,
                ecs,
                ..TestbedConfig::default()
            };
            let mut d = Deployment::build(kind, &cfg);
            let (_, split) = d.run_measure();
            let mut s = Samples::new();
            for x in &split {
                s.record(x.total);
            }
            s.summarize().expect("samples").trimmed_mean_ms
        };
        let plain = mean(false);
        let with_ecs = mean(true);
        fig.bars.push(Bar {
            label: format!("{} (no ECS)", kind.label()),
            mean_ms: plain,
            min_ms: 0.0,
            max_ms: 0.0,
            samples: 0,
        });
        fig.bars.push(Bar {
            label: format!("{} (ECS)", kind.label()),
            mean_ms: with_ecs,
            min_ms: 0.0,
            max_ms: 0.0,
            samples: 0,
        });
        fig.notes
            .push((format!("ecs_factor[{}]", kind.label()), with_ecs / plain));
    }
    fig
}

/// The §3 P1-fallback ablation: mixed MEC and non-MEC queries under the
/// three client policies. Returns bars `<policy> / <domain class>` with
/// an availability note per policy.
pub fn fallback_experiment(seed: u64) -> Figure {
    let mut fig = Figure::new(
        "fallback",
        "P1 workarounds: multicast and timeout fallback for non-MEC names",
    );
    let mec_name = Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap();
    let other_name = Name::parse("www.example.com").unwrap();

    for policy in [
        P1Policy::MecOnly,
        P1Policy::MulticastBoth,
        P1Policy::FallbackAfter(SimDuration::from_millis(60)),
    ] {
        let mut net = Network::new(seed);
        // MEC DNS: answers the CDN zone, ignores everything else.
        let mut mec_zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
        mec_zone.add_a(mec_name.clone(), Ipv4Addr::new(10, 96, 0, 20), 0);
        let mec_ip: IpAddr = "10.96.0.10".parse().unwrap();
        let mec = net.add_node(
            "mec-dns",
            [mec_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(1.6, 2.6, 0.9),
                    ..ServerConfig::default()
                },
                vec![
                    Box::new(ScopePlugin::new(vec![Name::parse(MEC_CDN_ZONE).unwrap()])),
                    Box::new(AuthoritativePlugin::new(vec![mec_zone])),
                ],
            ),
        );
        // Provider L-DNS: resolves everything, but sits farther away.
        let mut provider_zone = Zone::new(Name::parse("example.com").unwrap());
        provider_zone.add_a(other_name.clone(), Ipv4Addr::new(93, 184, 216, 34), 0);
        let mut provider_cdn_zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
        provider_cdn_zone.add_a(mec_name.clone(), Ipv4Addr::new(10, 96, 0, 20), 0);
        let provider_ip: IpAddr = "10.44.9.1".parse().unwrap();
        let provider = net.add_node(
            "provider-ldns",
            [provider_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(2.0, 3.5, 1.5),
                    ..ServerConfig::default()
                },
                vec![Box::new(AuthoritativePlugin::new(vec![
                    provider_zone,
                    provider_cdn_zone,
                ]))],
            ),
        );
        // The client, one hop from both (MEC near, provider far).
        let plan: Vec<PlannedQuery> = (0..30)
            .map(|i| {
                let name = if i % 2 == 0 {
                    mec_name.clone()
                } else {
                    other_name.clone()
                };
                PlannedQuery {
                    at: SimDuration::from_millis(200 * i as u64),
                    name,
                    strategy: policy.strategy(mec_ip, provider_ip),
                    ecs: None,
                }
            })
            .collect();
        let mut qc = QueryClient::new(plan);
        qc.engine_mut().query_timeout = SimDuration::from_millis(500);
        qc.engine_mut().retries = 0;
        let client = net.add_node("ue", ["172.16.0.9".parse::<IpAddr>().unwrap()], qc);
        net.connect(client, mec, LinkProfile::with_latency(Latency::UniformMs(1.0, 2.0)));
        net.connect(
            client,
            provider,
            LinkProfile::with_latency(Latency::UniformMs(12.0, 16.0)),
        );
        net.run();

        let measured = &net.behavior::<QueryClient>(client).measured;
        for (class, name) in [("mec", &mec_name), ("non-mec", &other_name)] {
            let mut s = Samples::new();
            let mut ok = 0usize;
            let mut all = 0usize;
            for m in measured.iter().filter(|m| &m.outcome.name == name) {
                all += 1;
                if !m.outcome.timed_out && m.outcome.rcode.is_ok() {
                    ok += 1;
                    s.record(m.outcome.rtt);
                }
            }
            if let Some(sum) = s.summarize() {
                fig.bars
                    .push(Bar::from_summary(format!("{} / {class}", policy.label()), &sum));
            }
            fig.notes.push((
                format!("availability[{} / {class}]", policy.label()),
                if all == 0 { 0.0 } else { ok as f64 / all as f64 },
            ));
        }
    }
    fig
}

/// §2 observation 2, quantified: *"this also leads to disaggregation of
/// requests and may increase the cache miss rate."*
///
/// One client population fetches a Zipf-popular catalog through three
/// equal caches. Under **aggregated** routing (consistent hash by
/// object, what a single stable C-DNS assignment gives) each object
/// lives on one cache; under **disaggregated** routing (the per-query
/// rotation Figure 3 shows commercial CDNs doing) the same object is
/// fetched through different caches, so it occupies capacity on all of
/// them and every first touch per cache is a miss.
#[derive(Debug, Clone)]
pub struct DisaggregationReport {
    /// Hit rate with stable object → cache assignment.
    pub aggregated_hit_rate: f64,
    /// Hit rate when requests rotate across caches.
    pub disaggregated_hit_rate: f64,
    /// Origin fetches in the aggregated scenario.
    pub aggregated_origin_fetches: u64,
    /// Origin fetches in the disaggregated scenario.
    pub disaggregated_origin_fetches: u64,
    /// Requests per scenario.
    pub requests: usize,
}

/// Runs the disaggregation experiment.
pub fn disaggregation_experiment(seed: u64) -> DisaggregationReport {
    use cdn_sim::protocol::{CdnMsg, CONTENT_PORT};
    use cdn_sim::{CacheServer, Catalog, Origin};
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    const OBJECTS: usize = 120;
    const REQUESTS: usize = 900;
    const OBJ_SIZE: u32 = 50_000;
    // Each cache holds a third of the catalog: the aggregated scenario
    // fits the popular head comfortably, the disaggregated one wastes
    // capacity on duplicates.
    const CACHE_BYTES: u64 = (OBJECTS as u64 / 3) * OBJ_SIZE as u64;

    struct Driver {
        caches: Vec<IpAddr>,
        schedule: Vec<String>,
        disaggregate: bool,
        next: usize,
        rr: usize,
        hits_by_latency: Vec<SimDuration>,
    }
    impl Driver {
        fn target_for(&mut self, key: &str) -> IpAddr {
            if self.disaggregate {
                self.rr += 1;
                self.caches[self.rr % self.caches.len()]
            } else {
                let mut h = DefaultHasher::new();
                key.hash(&mut h);
                self.caches[(h.finish() as usize) % self.caches.len()]
            }
        }
        fn issue_next(&mut self, ctx: &mut netsim::NodeContext<'_>) {
            if self.next >= self.schedule.len() {
                return;
            }
            let key = self.schedule[self.next].clone();
            self.next += 1;
            let target = self.target_for(&key);
            ctx.send(target, CONTENT_PORT, CdnMsg::Get { key }.encode());
        }
    }
    impl netsim::NodeBehavior for Driver {
        fn on_start(&mut self, ctx: &mut netsim::NodeContext<'_>) {
            // Closed loop: issue the next request when the previous one
            // finishes, so ordering is deterministic.
            self.issue_next(ctx);
        }
        fn on_datagram(&mut self, ctx: &mut netsim::NodeContext<'_>, dgram: netsim::Datagram) {
            if CdnMsg::decode(&dgram.payload).is_some() {
                self.hits_by_latency.push(SimDuration::ZERO);
                self.issue_next(ctx);
            }
        }
    }

    let run = |disaggregate: bool| -> (f64, u64) {
        let mut net = Network::new(seed);
        let catalog = Catalog::new();
        let keys: Vec<String> = (0..OBJECTS).map(|i| format!("vod/obj-{i:03}")).collect();
        for k in &keys {
            catalog.add(k, OBJ_SIZE);
        }
        let origin_ip: IpAddr = "198.51.100.80".parse().unwrap();
        let origin = net.add_node("origin", [origin_ip], Origin::new(catalog));
        let mut caches = Vec::new();
        for i in 0..3 {
            let ip: IpAddr = format!("10.96.0.{}", 20 + i).parse().unwrap();
            let node = net.add_node(
                &format!("cache-{i}"),
                [ip],
                CacheServer::new(ip, CACHE_BYTES, Some(origin_ip)),
            );
            net.connect(node, origin, LinkProfile::wan());
            net.add_default_route(node, origin);
            caches.push((ip, node));
        }
        // Zipf schedule shared by both scenarios (same seed → same
        // request sequence, so only the routing differs).
        let mut gen = workload::gen::RequestSchedule::new(seed);
        let schedule: Vec<String> = gen
            .poisson_zipf(REQUESTS, 100.0, &keys, 1.0)
            .into_iter()
            .map(|r| r.key)
            .collect();
        let client = net.add_node(
            "population",
            ["172.16.0.9".parse::<IpAddr>().unwrap()],
            Driver {
                caches: caches.iter().map(|&(ip, _)| ip).collect(),
                schedule,
                disaggregate,
                next: 0,
                rr: 0,
                hits_by_latency: Vec::new(),
            },
        );
        for &(_, node) in &caches {
            net.connect(client, node, LinkProfile::lan());
        }
        net.run();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &(_, node) in &caches {
            let c = net.behavior::<cdn_sim::CacheServer>(node);
            hits += c.hits;
            misses += c.misses;
        }
        let origin_served = net.behavior::<Origin>(origin).served;
        (hits as f64 / (hits + misses) as f64, origin_served)
    };

    let (aggregated_hit_rate, aggregated_origin_fetches) = run(false);
    let (disaggregated_hit_rate, disaggregated_origin_fetches) = run(true);
    DisaggregationReport {
        aggregated_hit_rate,
        disaggregated_hit_rate,
        aggregated_origin_fetches,
        disaggregated_origin_fetches,
        requests: REQUESTS,
    }
}

/// The stub-domain vs full-recursion ablation (DESIGN.md decision 3).
#[derive(Debug, Clone)]
pub struct RecursionAblation {
    /// Mean cold-lookup latency with the stub-domain redirect (the
    /// prototype's wiring), ms.
    pub stub_cold_ms: f64,
    /// Mean cold-lookup latency when the MEC L-DNS instead recurses
    /// from cloud-hosted root hints, ms.
    pub recursive_cold_ms: f64,
    /// Mean warm (cached at L-DNS) latency for the recursive
    /// configuration, ms.
    pub recursive_warm_ms: f64,
}

/// Runs the ablation: the same MEC topology, with the CDN zone reached
/// either through the stub-domain redirect to the collocated C-DNS, or
/// through full iterative resolution (root -> TLD -> A-DNS, all in the
/// cloud). The stub keeps every lookup inside the MEC; recursion pays
/// the "hierarchical lookup delays" S3 eliminates on every cache-cold
/// query.
pub fn recursion_ablation(seed: u64) -> RecursionAblation {
    use dns_server::plugins::{ForwardPlugin, RecursePlugin, StubDomainPlugin};

    let mec_name = Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap();
    let cache = Ipv4Addr::new(10, 96, 0, 20);

    // Queries spaced under the 30 s TTL measure warm lookups, over it
    // cold ones.
    let run = |recursive: bool, spacing_ms: u64| -> f64 {
        let mut net = Network::new(seed);
        // The collocated C-DNS (answers the CDN zone with TTL 30).
        let mut zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
        zone.add_a(mec_name.clone(), cache, 30);
        let cdns_ip: IpAddr = "10.96.0.9".parse().unwrap();
        let cdns = net.add_node(
            "cdns",
            [cdns_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(2.0, 3.3, 1.0),
                    ..ServerConfig::default()
                },
                vec![Box::new(AuthoritativePlugin::new(vec![zone.clone()]))],
            ),
        );
        // The cloud hierarchy: root delegates "test", "test" delegates
        // the CDN zone to a cloud A-DNS (same records, farther away).
        let mut root_zone = Zone::new(Name::root());
        root_zone.delegate(
            Name::parse("test").unwrap(),
            Name::parse("ns.test").unwrap(),
            Ipv4Addr::new(198, 51, 100, 2),
            86400,
        );
        let mut tld_zone = Zone::new(Name::parse("test").unwrap());
        tld_zone.delegate(
            Name::parse(MEC_CDN_ZONE).unwrap(),
            Name::parse(&format!("ns1.{MEC_CDN_ZONE}")).unwrap(),
            Ipv4Addr::new(198, 51, 100, 3),
            3600,
        );
        let cloud_cfg = || ServerConfig {
            processing: Latency::skewed(1.0, 2.0, 0.8),
            ..ServerConfig::default()
        };
        let root = net.add_node(
            "root",
            ["198.51.100.1".parse::<IpAddr>().unwrap()],
            DnsServer::new(cloud_cfg(), vec![Box::new(AuthoritativePlugin::new(vec![root_zone]))]),
        );
        let tld = net.add_node(
            "tld",
            ["198.51.100.2".parse::<IpAddr>().unwrap()],
            DnsServer::new(cloud_cfg(), vec![Box::new(AuthoritativePlugin::new(vec![tld_zone]))]),
        );
        let adns = net.add_node(
            "adns",
            ["198.51.100.3".parse::<IpAddr>().unwrap()],
            DnsServer::new(cloud_cfg(), vec![Box::new(AuthoritativePlugin::new(vec![zone]))]),
        );
        // The MEC L-DNS: cache + either stub redirect or full recursion.
        let ldns_ip: IpAddr = "10.96.0.10".parse().unwrap();
        let chain: Vec<Box<dyn dns_server::Plugin>> = if recursive {
            vec![
                Box::new(CachePlugin::new(1024)),
                Box::new(RecursePlugin::new(vec!["198.51.100.1".parse().unwrap()])),
            ]
        } else {
            vec![
                Box::new(CachePlugin::new(1024)),
                Box::new(StubDomainPlugin::new(vec![(
                    Name::parse(MEC_CDN_ZONE).unwrap(),
                    cdns_ip,
                )])),
                Box::new(ForwardPlugin::new("198.51.100.1".parse().unwrap())),
            ]
        };
        let ldns = net.add_node(
            "mec-ldns",
            [ldns_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(2.0, 3.3, 1.0),
                    ..ServerConfig::default()
                },
                chain,
            ),
        );
        // Topology: L-DNS and C-DNS collocated (intra-MEC); the
        // hierarchy is 40+ ms away in the cloud.
        net.connect(ldns, cdns, LinkProfile::with_latency(Latency::UniformMs(0.2, 0.5)));
        for node in [root, tld, adns] {
            net.connect(ldns, node, LinkProfile::with_latency(Latency::UniformMs(40.0, 44.0)));
            net.add_default_route(node, ldns);
        }
        net.add_default_route(cdns, ldns);
        // A local client (the wireless leg is common to both arms, so
        // this ablation measures only the resolution side).
        let plan: Vec<PlannedQuery> = (0..12)
            .map(|i| PlannedQuery {
                at: SimDuration::from_millis(spacing_ms * i as u64),
                name: mec_name.clone(),
                strategy: SendStrategy::Unicast(ldns_ip),
                ecs: None,
            })
            .collect();
        let client = net.add_node(
            "client",
            ["172.16.0.9".parse::<IpAddr>().unwrap()],
            QueryClient::new(plan),
        );
        net.connect(client, ldns, LinkProfile::with_latency(Latency::UniformMs(0.5, 1.0)));
        net.run();
        let mut s = Samples::new();
        for m in &net.behavior::<QueryClient>(client).measured {
            assert!(!m.outcome.timed_out, "ablation query lost");
            assert_eq!(m.outcome.addrs, vec![cache], "wrong answer in ablation");
            s.record(m.outcome.rtt);
        }
        s.summarize().expect("samples").trimmed_mean_ms
    };

    RecursionAblation {
        stub_cold_ms: run(false, 35_000),
        recursive_cold_ms: run(true, 35_000),
        recursive_warm_ms: run(true, 1_000),
    }
}

/// One row of the load/scale experiment.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Concurrent UEs.
    pub ues: usize,
    /// MEC DNS replicas behind the (unchanged) ClusterIP.
    pub replicas: usize,
    /// Mean resolution latency, ms.
    pub mean_ms: f64,
    /// 92nd percentile latency, ms.
    pub p92_ms: f64,
    /// Fraction of queries answered.
    pub answered: f64,
}

/// Load and horizontal scaling: many UEs share one MEC DNS ClusterIP;
/// each replica is a single-worker pod ("for scalability reasons,
/// [cache server instances] are co-running at a MEC location" — the
/// same applies to the DNS pods). Queueing delay appears as load grows
/// and disappears again as the deployment scales out, with the
/// ClusterIP unchanged throughout.
pub fn load_experiment(seed: u64) -> Vec<LoadPoint> {
    use dns_server::plugins::AuthoritativePlugin;

    let mec_name = Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap();
    let configs: [(usize, usize); 5] = [(1, 1), (16, 1), (64, 1), (64, 2), (64, 4)];
    let mut out = Vec::new();
    for (ues, replicas) in configs {
        let mut net = Network::new(seed);
        let mut cluster =
            mec_orch::Cluster::new(&mut net, "mec", mec_orch::ClusterConfig::default());
        cluster.add_namespace("cdn", mec_orch::Visibility::Public);
        let make_dns = |_ordinal: usize| {
            let mut zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
            zone.add_a(
                Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap(),
                Ipv4Addr::new(10, 96, 0, 20),
                0,
            );
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(2.0, 3.3, 1.0),
                    single_worker: true,
                    ..ServerConfig::default()
                },
                vec![Box::new(AuthoritativePlugin::new(vec![zone]))],
            )
        };
        let deployment = cluster.create_deployment(&mut net, "cdn", "mecdns", replicas, make_dns);
        let svc = cluster.create_service(&mut net, "cdn", "dns", &deployment.pods);
        let gw = net.add_node("gw", ["10.44.0.9".parse::<IpAddr>().unwrap()], Nop);
        cluster.attach_external(
            &mut net,
            gw,
            LinkProfile::with_latency(Latency::UniformMs(0.3, 0.6)),
        );

        // Each UE digs every 50 ms for 10 s, staggered by index.
        let mut clients = Vec::new();
        for u in 0..ues {
            let plan: Vec<PlannedQuery> = (0..200)
                .map(|i| PlannedQuery {
                    at: SimDuration::from_micros(50_000 * i + 781 * u as u64),
                    name: mec_name.clone(),
                    strategy: SendStrategy::Unicast(svc.cluster_ip),
                    ecs: None,
                })
                .collect();
            let node = net.add_node(
                &format!("ue-{u}"),
                [format!("172.16.{}.{}", u / 200, 10 + u % 200)
                    .parse::<IpAddr>()
                    .unwrap()],
                QueryClient::new(plan),
            );
            net.connect(
                node,
                gw,
                LinkProfile::with_latency(Latency::UniformMs(1.0, 2.0)),
            );
            net.add_default_route(node, gw);
            clients.push(node);
        }
        net.run();
        let mut samples = Samples::new();
        let mut answered = 0usize;
        let mut total = 0usize;
        for &c in &clients {
            for m in &net.behavior::<QueryClient>(c).measured {
                total += 1;
                if !m.outcome.timed_out {
                    answered += 1;
                    samples.record(m.outcome.rtt);
                }
            }
        }
        let sum = samples.summarize().expect("load run produced samples");
        out.push(LoadPoint {
            ues,
            replicas,
            mean_ms: sum.trimmed_mean_ms,
            p92_ms: sum.p92_ms,
            answered: answered as f64 / total.max(1) as f64,
        });
    }
    out
}

/// End-to-end content access: the abstract's claim that faster DNS
/// yields "drastic reductions in the access latency for content cached
/// in MEC-CDNs".
#[derive(Debug, Clone)]
pub struct ContentAccessReport {
    /// MEC-CDN: DNS resolution mean, ms.
    pub mec_dns_ms: f64,
    /// MEC-CDN: warm content fetch mean, ms.
    pub mec_fetch_ms: f64,
    /// Classic deployment: DNS resolution mean, ms.
    pub classic_dns_ms: f64,
    /// Classic deployment: content fetch mean (cache in the cloud), ms.
    pub classic_fetch_ms: f64,
}

impl ContentAccessReport {
    /// Total MEC-CDN access latency (DNS + fetch).
    pub fn mec_total_ms(&self) -> f64 {
        self.mec_dns_ms + self.mec_fetch_ms
    }

    /// Total classic access latency.
    pub fn classic_total_ms(&self) -> f64 {
        self.classic_dns_ms + self.classic_fetch_ms
    }

    /// End-to-end speedup of MEC-CDN over the classic deployment.
    pub fn speedup(&self) -> f64 {
        self.classic_total_ms() / self.mec_total_ms()
    }
}

/// Runs the content-access comparison: a UE on the LTE testbed resolves
/// and then fetches a 200 kB object, against (a) the MEC-CDN deployment
/// (edge L-DNS + C-DNS + edge cache) and (b) the classic deployment
/// (LAN L-DNS, far C-DNS, cache in the cloud).
pub fn content_access_experiment(seed: u64) -> ContentAccessReport {
    use cdn_sim::protocol::{CdnMsg, CONTENT_PORT};
    use cdn_sim::{CacheServer, Catalog, Origin};
    use dns_server::{SendStrategy, StubEngine};
    use ran_sim::{EpcConfig, RadioProfile, Ran};

    const OBJ: &str = "video.demo1.mycdn.ciab.test./seg-0";
    const ROUNDS: usize = 15;

    /// Resolve, then GET, repeatedly; record both phases.
    struct AccessClient {
        resolver: IpAddr,
        dns_ms: Vec<f64>,
        fetch_ms: Vec<f64>,
        engine: StubEngine,
        fetch_started: Option<netsim::SimTime>,
        rounds_left: usize,
    }
    impl netsim::NodeBehavior for AccessClient {
        fn on_start(&mut self, ctx: &mut netsim::NodeContext<'_>) {
            ctx.set_timer(SimDuration::from_millis(200), 1);
        }
        fn on_timer(
            &mut self,
            ctx: &mut netsim::NodeContext<'_>,
            _t: netsim::TimerToken,
            data: u64,
        ) {
            if StubEngine::owns_timer(data) {
                self.engine.on_timer(ctx, data);
                return;
            }
            self.engine.issue(
                ctx,
                Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap(),
                dns_wire::RrType::A,
                SendStrategy::Unicast(self.resolver),
                None,
                0,
            );
        }
        fn on_datagram(&mut self, ctx: &mut netsim::NodeContext<'_>, dgram: netsim::Datagram) {
            if let Some(outcome) = self.engine.on_datagram(ctx, &dgram) {
                self.dns_ms.push(outcome.rtt.as_millis_f64());
                let cache = IpAddr::V4(outcome.addrs[0]);
                self.fetch_started = Some(ctx.now());
                ctx.send(cache, CONTENT_PORT, CdnMsg::Get { key: OBJ.into() }.encode());
                return;
            }
            if let Some(CdnMsg::Data { .. }) = CdnMsg::decode(&dgram.payload) {
                let started = self.fetch_started.take().expect("fetch in flight");
                self.fetch_ms.push((ctx.now() - started).as_millis_f64());
                self.rounds_left -= 1;
                if self.rounds_left > 0 {
                    // Next round after the C-DNS TTL has lapsed.
                    ctx.set_timer(SimDuration::from_secs(35), 1);
                }
            }
        }
    }

    let run = |mec: bool| -> (f64, f64) {
        let mut net = Network::new(seed);
        let mut ran = Ran::build(&mut net, EpcConfig::default());
        ran.add_enb(&mut net);
        let pgw = ran.epc.pgw;

        let catalog = Catalog::new();
        catalog.add(OBJ, 200_000);
        let origin_ip: IpAddr = "198.51.100.80".parse().unwrap();
        let origin = net.add_node("origin", [origin_ip], Origin::new(catalog));
        net.connect(
            pgw,
            origin,
            LinkProfile::with_latency(Latency::UniformMs(40.0, 44.0))
                .with_bandwidth_bps(100_000_000),
        );
        net.add_default_route(origin, pgw);

        // The cache: at the MEC (0.4 ms) or in the cloud next to the
        // origin (classic CDN point of presence).
        let cache_ip: IpAddr = "10.96.0.20".parse().unwrap();
        let cache = net.add_node(
            "cache",
            [cache_ip],
            CacheServer::new(cache_ip, 1 << 22, Some(origin_ip)),
        );
        let cache_link = if mec {
            LinkProfile::with_latency(Latency::UniformMs(0.3, 0.6))
                .with_bandwidth_bps(10_000_000_000)
        } else {
            LinkProfile::with_latency(Latency::UniformMs(38.0, 42.0))
                .with_bandwidth_bps(100_000_000)
        };
        net.connect(pgw, cache, cache_link);
        net.add_default_route(cache, pgw);

        // The C-DNS answering with that cache.
        let mut router = cdn_sim::TrafficRouterPlugin::new(
            Name::parse(MEC_CDN_ZONE).unwrap(),
            vec![Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap()],
            vec![Ipv4Addr::new(10, 96, 0, 20)],
            cdn_sim::Selection::ConsistentHash,
        );
        router.ttl = 30;
        let cdns_ip: IpAddr = "192.0.2.40".parse().unwrap();
        let cdns = net.add_node(
            "cdns",
            [cdns_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(2.0, 3.3, 1.0),
                    ..ServerConfig::default()
                },
                vec![Box::new(router)],
            ),
        );
        let cdns_link = if mec {
            LinkProfile::with_latency(Latency::UniformMs(0.3, 0.6))
        } else {
            LinkProfile::with_latency(Latency::UniformMs(40.0, 44.0))
        };
        net.connect(pgw, cdns, cdns_link);
        net.add_default_route(cdns, pgw);

        // The L-DNS the UE queries.
        let ldns_ip: IpAddr = "10.44.9.10".parse().unwrap();
        let ldns = net.add_node(
            "ldns",
            [ldns_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(2.0, 3.3, 1.0),
                    ..ServerConfig::default()
                },
                vec![
                    Box::new(CachePlugin::new(1024)),
                    Box::new(dns_server::plugins::StubDomainPlugin::new(vec![(
                        Name::parse(MEC_CDN_ZONE).unwrap(),
                        cdns_ip,
                    )])),
                ],
            ),
        );
        let ldns_link = if mec {
            LinkProfile::with_latency(Latency::UniformMs(0.3, 0.6))
        } else {
            LinkProfile::with_latency(Latency::UniformMs(1.0, 1.6))
        };
        net.connect(pgw, ldns, ldns_link);
        net.add_default_route(ldns, pgw);

        let ue = ran.attach_ue(
            &mut net,
            "ue",
            AccessClient {
                resolver: ldns_ip,
                dns_ms: vec![],
                fetch_ms: vec![],
                engine: StubEngine::new(),
                fetch_started: None,
                rounds_left: ROUNDS,
            },
            0,
            RadioProfile::Lte,
        );
        net.run();
        let c = net.behavior::<AccessClient>(ue.node);
        assert_eq!(c.fetch_ms.len(), ROUNDS, "all rounds completed");
        // Drop the first (cold-cache) round from the fetch mean: the
        // abstract's claim is about content *cached* in MEC-CDN.
        let dns = c.dns_ms.iter().sum::<f64>() / c.dns_ms.len() as f64;
        let warm = &c.fetch_ms[1..];
        let fetch = warm.iter().sum::<f64>() / warm.len() as f64;
        (dns, fetch)
    };

    let (mec_dns_ms, mec_fetch_ms) = run(true);
    let (classic_dns_ms, classic_fetch_ms) = run(false);
    ContentAccessReport {
        mec_dns_ms,
        mec_fetch_ms,
        classic_dns_ms,
        classic_fetch_ms,
    }
}

/// The §3 mobility experiment's result: a UE roams between two MEC
/// sites, its DNS target switching with the handoff.
#[derive(Debug, Clone)]
pub struct MobilityReport {
    /// When the handoff (and DNS-target switch) happened.
    pub handoff_at_ms: f64,
    /// Queries answered by the correct (serving) site's cache.
    pub correct_site_answers: usize,
    /// Queries answered by the wrong site's cache.
    pub wrong_site_answers: usize,
    /// Queries that timed out around the handoff gap.
    pub lost: usize,
    /// Mean resolution latency while on site A, ms.
    pub mean_before_ms: f64,
    /// Mean resolution latency after settling on site B, ms.
    pub mean_after_ms: f64,
    /// Site A's cache address.
    pub cache_a: Ipv4Addr,
    /// Site B's cache address.
    pub cache_b: Ipv4Addr,
}

/// Runs the mobility experiment: two eNBs, each with its own MEC DNS at
/// the base station serving the same CDN domain from its own local
/// cache ("presenting different content from different edge locations
/// based on context", §1). The UE's DNS target is switched as part of
/// the handoff, per §3.
pub fn mobility_experiment(seed: u64) -> MobilityReport {
    use crate::dos::{DirectedClient, ResolverDirective};
    use ran_sim::{EpcConfig, RadioProfile, Ran};

    let mut net = Network::new(seed);
    let mut ran = Ran::build(&mut net, EpcConfig::default());
    let enb_a = ran.add_enb(&mut net);
    let enb_b = ran.add_enb(&mut net);

    let mec_name = Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap();
    let cache_a = Ipv4Addr::new(10, 100, 0, 20);
    let cache_b = Ipv4Addr::new(10, 101, 0, 20);

    // One MEC DNS per base station, answering with its local cache.
    let build_site = |net: &mut Network, enb: usize, ldns_ip: &str, cache: Ipv4Addr| {
        let mut zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
        zone.add_a(mec_name.clone(), cache, 0);
        let addr: IpAddr = ldns_ip.parse().unwrap();
        let node = net.add_node(
            &format!("mec-dns-{enb}"),
            [addr],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(1.6, 2.6, 0.9),
                    ..ServerConfig::default()
                },
                vec![Box::new(AuthoritativePlugin::new(vec![zone]))],
            ),
        );
        net.connect(
            ran.enb(enb),
            node,
            LinkProfile::with_latency(Latency::UniformMs(0.2, 0.5)),
        );
        net.add_default_route(node, ran.enb(enb));
        addr
    };
    let mec_a = build_site(&mut net, enb_a, "10.100.0.10", cache_a);
    let mec_b = build_site(&mut net, enb_b, "10.101.0.10", cache_b);

    // The UE: queries every 100 ms at whichever MEC DNS the directive
    // names; the directive flips with the handoff.
    let directive = ResolverDirective::new(mec_a);
    let ue = ran.attach_ue(
        &mut net,
        "ue",
        DirectedClient::new(
            directive.clone(),
            mec_name,
            SimDuration::from_millis(100),
            60,
        ),
        enb_a,
        RadioProfile::Lte,
    );

    // Roam at t = 3 s: radio handoff + DNS-target switch together.
    let handoff_at = netsim::SimTime::ZERO + SimDuration::from_secs(3);
    net.run_until(handoff_at);
    ran.handoff(&mut net, ue, enb_b, RadioProfile::Lte);
    directive.set(mec_b);
    net.run();

    let client = net.behavior::<DirectedClient>(ue.node);
    let mut correct = 0;
    let mut wrong = 0;
    let mut lost = 0;
    let mut before = Samples::new();
    let mut after = Samples::new();
    for o in client.outcomes() {
        let (issued_at, resolver) = client.issued_to[o.tag as usize];
        if o.timed_out {
            lost += 1;
            continue;
        }
        let expected = if resolver == mec_a { cache_a } else { cache_b };
        if o.addrs == vec![expected] {
            correct += 1;
        } else {
            wrong += 1;
        }
        if resolver == mec_a {
            before.record(o.rtt);
        } else if issued_at > handoff_at + SimDuration::from_millis(200) {
            // Settled on site B (skip the retry-inflated gap queries).
            after.record(o.rtt);
        }
    }
    MobilityReport {
        handoff_at_ms: handoff_at.as_millis_f64(),
        correct_site_answers: correct,
        wrong_site_answers: wrong,
        lost,
        mean_before_ms: before.summarize().map(|s| s.trimmed_mean_ms).unwrap_or(f64::NAN),
        mean_after_ms: after.summarize().map(|s| s.trimmed_mean_ms).unwrap_or(f64::NAN),
        cache_a,
        cache_b,
    }
}

/// The DoS-switch experiment: an attack floods the MEC DNS; the
/// orchestrator switches clients to the provider L-DNS and recovers
/// afterwards.
pub struct DosReport {
    /// Activations and recoveries of the mitigation.
    pub activations: u64,
    /// Recoveries back to the MEC DNS.
    pub recoveries: u64,
    /// Resolver used by the client over time (issue time ms, resolver).
    pub resolver_timeline: Vec<(f64, IpAddr)>,
    /// Fraction of client queries answered.
    pub availability: f64,
    /// The MEC DNS address.
    pub mec_dns: IpAddr,
    /// The provider address.
    pub provider: IpAddr,
}

/// Runs the DoS-switch experiment.
pub fn dos_experiment(seed: u64) -> DosReport {
    let mut net = Network::new(seed);
    let mut cluster = mec_orch::Cluster::new(&mut net, "mec", mec_orch::ClusterConfig::default());
    cluster.add_namespace("cdn", mec_orch::Visibility::Public);

    let mec_name = Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap();
    let mut zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
    zone.add_a(mec_name.clone(), Ipv4Addr::new(10, 96, 0, 20), 0);
    let dns_pod = cluster.launch_pod(
        &mut net,
        "cdn",
        "mecdns",
        DnsServer::new(
            ServerConfig::default(),
            vec![Box::new(AuthoritativePlugin::new(vec![zone.clone()]))],
        ),
    );
    let svc = cluster.create_service(&mut net, "cdn", "dns", &[dns_pod]);
    let mec_dns = svc.cluster_ip;

    // Provider L-DNS outside the cluster.
    let provider: IpAddr = "10.44.9.1".parse().unwrap();
    let provider_node = net.add_node(
        "provider",
        [provider],
        DnsServer::new(
            ServerConfig::default(),
            vec![Box::new(AuthoritativePlugin::new(vec![zone]))],
        ),
    );

    // A gateway standing in for the P-GW.
    let gw = net.add_node("gw", ["10.44.0.9".parse::<IpAddr>().unwrap()], Nop);
    cluster.attach_external(&mut net, gw, LinkProfile::with_latency(Latency::UniformMs(0.3, 0.6)));
    net.connect(gw, provider_node, LinkProfile::with_latency(Latency::UniformMs(8.0, 12.0)));
    net.add_default_route(provider_node, gw);

    // The orchestrator's policy controller.
    let directive = ResolverDirective::new(mec_dns);
    let policy = DosPolicy::new(
        cluster.monitor(),
        "cdn/dns",
        directive.clone(),
        mec_dns,
        provider,
        200.0,
    );
    let controller = net.add_node("dos-guard", ["10.44.0.99".parse::<IpAddr>().unwrap()], policy);

    // The legitimate client, querying every 100 ms for 30 s.
    let client = net.add_node(
        "ue",
        ["172.16.0.9".parse::<IpAddr>().unwrap()],
        DirectedClient::new(directive, mec_name, SimDuration::from_millis(100), 300),
    );
    net.connect(client, gw, LinkProfile::with_latency(Latency::UniformMs(1.0, 2.0)));
    net.add_default_route(client, gw);

    // The attack: from t=5 s to t=15 s, a flood of 1000 qps at the MEC
    // DNS ClusterIP from a botnet node.
    struct Flood {
        target: IpAddr,
        until: SimDuration,
    }
    impl netsim::NodeBehavior for Flood {
        fn on_start(&mut self, ctx: &mut netsim::NodeContext<'_>) {
            ctx.set_timer(SimDuration::from_secs(5), 0);
        }
        fn on_timer(
            &mut self,
            ctx: &mut netsim::NodeContext<'_>,
            _t: netsim::TimerToken,
            _d: u64,
        ) {
            if ctx.now().as_millis_f64() > self.until.as_millis_f64() {
                return;
            }
            let q = dns_wire::Message::query(
                9999,
                Name::parse("flood.mycdn.ciab.test").unwrap(),
                dns_wire::RrType::A,
            );
            ctx.send(self.target, 53, q.encode().unwrap());
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
    }
    let attacker = net.add_node(
        "botnet",
        ["172.16.0.66".parse::<IpAddr>().unwrap()],
        Flood {
            target: mec_dns,
            until: SimDuration::from_secs(15),
        },
    );
    net.connect(attacker, gw, LinkProfile::with_latency(Latency::UniformMs(1.0, 2.0)));
    net.add_default_route(attacker, gw);

    // The policy controller re-arms its sampling timer forever (it is a
    // long-running control loop), so bound the run instead of draining.
    net.run_until(netsim::SimTime::ZERO + SimDuration::from_secs(40));

    let client_beh = net.behavior::<DirectedClient>(client);
    let timeline: Vec<(f64, IpAddr)> = client_beh
        .issued_to
        .iter()
        .map(|(t, r)| (t.as_millis_f64(), *r))
        .collect();
    let answered = client_beh
        .outcomes()
        .iter()
        .filter(|o| !o.timed_out && o.rcode.is_ok())
        .count();
    let total = client_beh.outcomes().len();
    let policy = net.behavior::<DosPolicy>(controller);
    DosReport {
        activations: policy.activations,
        recoveries: policy.recoveries,
        resolver_timeline: timeline,
        availability: if total == 0 {
            0.0
        } else {
            answered as f64 / total as f64
        },
        mec_dns,
        provider,
    }
}

/// Shape of the chaos run: how long the client queries and when the
/// faults land. All times are off the client's 200 ms query grid so the
/// fault/query interleaving is unambiguous.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Queries per policy, one every 200 ms, alternating MEC and
    /// non-MEC names.
    pub queries: usize,
    /// When the MEC DNS node crashes (in-memory state lost).
    pub crash_at: SimDuration,
    /// When it restarts cold.
    pub restart_at: SimDuration,
    /// Window during which the client ↔ MEC DNS link is degraded
    /// (extra loss + latency + jitter); the provider path stays clean.
    pub degrade: (SimDuration, SimDuration),
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            queries: 60,
            crash_at: SimDuration::from_millis(3_900),
            restart_at: SimDuration::from_millis(7_900),
            degrade: (SimDuration::from_millis(1_050), SimDuration::from_millis(2_550)),
        }
    }
}

impl ChaosConfig {
    /// A shortened run for CI smoke tests: same fault shapes, ~5 s of
    /// virtual time instead of ~12 s.
    pub fn quick() -> Self {
        ChaosConfig {
            queries: 24,
            crash_at: SimDuration::from_millis(1_300),
            restart_at: SimDuration::from_millis(2_700),
            degrade: (SimDuration::from_millis(450), SimDuration::from_millis(950)),
        }
    }
}

/// One client deployment's (P1 policy's) behaviour under the fault
/// schedule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosDeployment {
    /// Policy label (see [`P1Policy::label`]).
    pub policy: String,
    /// Queries issued.
    pub total: usize,
    /// Queries answered with a usable rcode.
    pub answered: usize,
    /// `answered / total`.
    pub availability: f64,
    /// Availability over the MEC-served name only.
    pub mec_availability: f64,
    /// Availability over the non-MEC name only.
    pub non_mec_availability: f64,
    /// 99th-percentile resolution latency over answered queries, ms.
    pub p99_ms: Option<f64>,
    /// Answers served by the provider L-DNS while the MEC DNS was down.
    pub degraded_during_outage: usize,
    /// Answers served by the MEC DNS while it was down (must be 0 —
    /// a crashed node answering would be a simulator bug).
    pub mec_served_during_outage: usize,
    /// Time from the MEC DNS restart to its first answer, ms. `None`
    /// when the policy never got one (e.g. too few post-restart
    /// queries).
    pub recovery_ms: Option<f64>,
    /// `stub.query` counter — must equal `total`.
    pub queries_sent: u64,
    /// `stub.timeout` counter — must equal `total - answered`.
    pub timeouts: u64,
    /// `stub.fallback` counter (timer-based fallback engagements).
    pub fallback_engaged: u64,
    /// Answers that actually came from the fallback resolver.
    pub used_fallback: usize,
}

/// The chaos experiment's result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosReport {
    /// Root seed the per-policy trials were derived from.
    pub seed: u64,
    /// MEC DNS crash time, ms.
    pub crash_at_ms: f64,
    /// MEC DNS restart time, ms.
    pub restart_at_ms: f64,
    /// Degraded-link window, ms.
    pub degrade_window_ms: (f64, f64),
    /// One entry per P1 policy, in [`P1Policy`] declaration order.
    pub deployments: Vec<ChaosDeployment>,
}

impl ChaosReport {
    /// Plain-text rendering for `repro chaos`.
    pub fn render(&self) -> String {
        let mut out = String::from("== chaos — resolution under link faults and a MEC DNS crash ==\n");
        out.push_str(&format!(
            "MEC DNS down {:.1}s..{:.1}s; client<->MEC link degraded {:.2}s..{:.2}s\n",
            self.crash_at_ms / 1000.0,
            self.restart_at_ms / 1000.0,
            self.degrade_window_ms.0 / 1000.0,
            self.degrade_window_ms.1 / 1000.0,
        ));
        out.push_str(&format!(
            "{:<20} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
            "policy", "avail", "mec", "non-mec", "p99(ms)", "degraded", "recov(ms)"
        ));
        for d in &self.deployments {
            out.push_str(&format!(
                "{:<20} {:>6.3} {:>9.3} {:>9.3} {:>9} {:>9} {:>10}\n",
                d.policy,
                d.availability,
                d.mec_availability,
                d.non_mec_availability,
                d.p99_ms.map_or("-".to_string(), |v| format!("{v:.1}")),
                d.degraded_during_outage,
                d.recovery_ms.map_or("-".to_string(), |v| format!("{v:.1}")),
            ));
        }
        out
    }
}

/// Runs the chaos experiment serially. See [`chaos_experiment_with`].
pub fn chaos_experiment(seed: u64) -> ChaosReport {
    chaos_experiment_with(seed, &Runner::default(), &ChaosConfig::default())
}

/// The robustness capstone: the [`fallback_experiment`] world put under
/// a deterministic fault schedule — a degraded client ↔ MEC link
/// window, then a hard MEC DNS crash with a cold restart — one trial
/// per [`P1Policy`], fanned out on `runner` with [`derive_seed`]-derived
/// seeds and merged in policy order (byte-identical at any thread
/// count).
///
/// Every per-policy count is cross-validated against the stub engine's
/// telemetry counters before the report is returned: a divergence
/// between what the client measured and what the telemetry traced
/// panics rather than producing a report that silently disagrees with
/// itself.
pub fn chaos_experiment_with(seed: u64, runner: &Runner, cfg: &ChaosConfig) -> ChaosReport {
    let mec_name = Name::parse(workload::sites::MEC_CDN_DOMAIN).unwrap();
    let other_name = Name::parse("www.example.com").unwrap();
    let policies = [
        P1Policy::MecOnly,
        P1Policy::MulticastBoth,
        P1Policy::FallbackAfter(SimDuration::from_millis(60)),
    ];

    let deployments = runner.run_seeded(policies.len(), seed, |idx, trial_seed| {
        let policy = policies[idx];
        let mut net = Network::new(trial_seed);
        // Same cast as the fallback experiment: a scoped MEC DNS that
        // ignores non-MEC names, and a farther provider L-DNS that
        // answers everything.
        let mut mec_zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
        mec_zone.add_a(mec_name.clone(), Ipv4Addr::new(10, 96, 0, 20), 0);
        let mec_ip: IpAddr = "10.96.0.10".parse().unwrap();
        let mec = net.add_node(
            "mec-dns",
            [mec_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(1.6, 2.6, 0.9),
                    ..ServerConfig::default()
                },
                vec![
                    Box::new(ScopePlugin::new(vec![Name::parse(MEC_CDN_ZONE).unwrap()])),
                    Box::new(AuthoritativePlugin::new(vec![mec_zone])),
                ],
            ),
        );
        let mut provider_zone = Zone::new(Name::parse("example.com").unwrap());
        provider_zone.add_a(other_name.clone(), Ipv4Addr::new(93, 184, 216, 34), 0);
        let mut provider_cdn_zone = Zone::new(Name::parse(MEC_CDN_ZONE).unwrap());
        provider_cdn_zone.add_a(mec_name.clone(), Ipv4Addr::new(10, 96, 0, 20), 0);
        let provider_ip: IpAddr = "10.44.9.1".parse().unwrap();
        let provider = net.add_node(
            "provider-ldns",
            [provider_ip],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(2.0, 3.5, 1.5),
                    ..ServerConfig::default()
                },
                vec![Box::new(AuthoritativePlugin::new(vec![
                    provider_zone,
                    provider_cdn_zone,
                ]))],
            ),
        );

        let plan: Vec<PlannedQuery> = (0..cfg.queries)
            .map(|i| {
                let name = if i % 2 == 0 {
                    mec_name.clone()
                } else {
                    other_name.clone()
                };
                PlannedQuery {
                    at: SimDuration::from_millis(200 * i as u64),
                    name,
                    strategy: policy.strategy(mec_ip, provider_ip),
                    ecs: None,
                }
            })
            .collect();
        let mut qc = QueryClient::new(plan);
        qc.engine_mut().query_timeout = SimDuration::from_millis(500);
        qc.engine_mut().retries = 0;
        let telemetry = netsim::Telemetry::new();
        qc.engine_mut().set_telemetry(telemetry.clone());
        let client = net.add_node("ue", ["172.16.0.9".parse::<IpAddr>().unwrap()], qc);
        let mec_link =
            net.connect(client, mec, LinkProfile::with_latency(Latency::UniformMs(1.0, 2.0)));
        net.connect(
            client,
            provider,
            LinkProfile::with_latency(Latency::UniformMs(12.0, 16.0)),
        );

        // The fault plane: degrade the MEC-side access for a while, then
        // kill the MEC DNS outright and bring it back cold.
        netsim::FaultSchedule::new()
            .degrade_link(mec_link, cfg.degrade.0..cfg.degrade.1, 0.25, 3.0, 2.0)
            .crash_node(mec, cfg.crash_at, Some(cfg.restart_at))
            .install(&mut net);
        net.run();

        let crash = netsim::SimTime::ZERO + cfg.crash_at;
        let restart = netsim::SimTime::ZERO + cfg.restart_at;
        let measured = &net.behavior::<QueryClient>(client).measured;
        let mut samples = Samples::new();
        let (mut answered, mut timed_out) = (0usize, 0usize);
        // `is-mec-name` → (answered, total).
        let mut per_class: HashMap<bool, (usize, usize)> = HashMap::new();
        let (mut degraded_during_outage, mut mec_served_during_outage) = (0usize, 0usize);
        let mut used_fallback = 0usize;
        let mut recovery_ms: Option<f64> = None;
        for m in measured {
            let class = per_class.entry(m.outcome.name == mec_name).or_insert((0, 0));
            class.1 += 1;
            if m.outcome.timed_out {
                timed_out += 1;
            }
            if m.outcome.timed_out || !m.outcome.rcode.is_ok() {
                continue;
            }
            answered += 1;
            class.0 += 1;
            samples.record(m.outcome.rtt);
            if m.outcome.used_fallback {
                used_fallback += 1;
            }
            // During the outage the crashed node must be silent; any
            // answer in that window has to come from the provider.
            if m.finished >= crash && m.finished < restart {
                match m.outcome.responder {
                    Some(r) if r == mec_ip => mec_served_during_outage += 1,
                    Some(r) if r == provider_ip => degraded_during_outage += 1,
                    _ => {}
                }
            }
            if m.outcome.responder == Some(mec_ip) && m.finished >= restart {
                let since = (m.finished - restart).as_millis_f64();
                recovery_ms = Some(recovery_ms.map_or(since, |r: f64| r.min(since)));
            }
        }
        let total = measured.len();
        // Cross-validate the client's measurements against the stub
        // engine's telemetry trace of the same exchanges.
        assert_eq!(
            telemetry.counter("stub.query"),
            cfg.queries as u64,
            "telemetry lost issued queries ({})",
            policy.label()
        );
        assert_eq!(total, cfg.queries, "client lost outcomes ({})", policy.label());
        assert_eq!(
            telemetry.counter("stub.timeout") as usize,
            timed_out,
            "telemetry timeouts disagree with measured outcomes ({})",
            policy.label()
        );
        let fallback_engaged = telemetry.counter("stub.fallback");
        assert!(
            used_fallback as u64 <= fallback_engaged + telemetry.counter("stub.servfail"),
            "more fallback answers than engagements ({})",
            policy.label()
        );
        let avail = |class: Option<&(usize, usize)>| {
            class.map_or(0.0, |&(ok, all)| if all == 0 { 0.0 } else { ok as f64 / all as f64 })
        };
        ChaosDeployment {
            policy: policy.label().to_string(),
            total,
            answered,
            availability: if total == 0 { 0.0 } else { answered as f64 / total as f64 },
            mec_availability: avail(per_class.get(&true)),
            non_mec_availability: avail(per_class.get(&false)),
            p99_ms: samples.percentile(99.0),
            degraded_during_outage,
            mec_served_during_outage,
            recovery_ms,
            queries_sent: telemetry.counter("stub.query"),
            timeouts: telemetry.counter("stub.timeout"),
            fallback_engaged,
            used_fallback,
        }
    });

    ChaosReport {
        seed,
        crash_at_ms: cfg.crash_at.as_millis_f64(),
        restart_at_ms: cfg.restart_at.as_millis_f64(),
        degrade_window_ms: (cfg.degrade.0.as_millis_f64(), cfg.degrade.1.as_millis_f64()),
        deployments,
    }
}
