#![warn(missing_docs)]

//! `mec-cdn` — the paper's contribution: DNS re-architected for CDNs at
//! the mobile edge.
//!
//! *"DNS Does Not Suffice for MEC-CDN"* (HotNets '20) argues that a CDN
//! deployed at the mobile edge can only meet the sub-20 ms latency
//! envelope if **both** halves of its DNS path move into the MEC: the
//! local resolver (P1 — *finding a cache quickly*) and the CDN's routing
//! DNS (P2 — *finding the right cache*). This crate assembles the
//! substrates of the workspace into that design and into every
//! comparison point of the paper's evaluation:
//!
//! * [`ecosystem`] — Table 2's entities and roles, as types deployments
//!   are described with.
//! * [`deployments`] — builders for the six Figure 5 scenarios, from
//!   "MEC L-DNS w/ MEC C-DNS" (the proposal) to Cloudflare DNS, all on
//!   the same simulated LTE testbed.
//! * [`measurement`] — the `dig`+`tcpdump` methodology: query clients
//!   with RTT accounting plus a P-GW tap that splits every lookup into
//!   its wireless and resolver components.
//! * [`fallback`] — §3's P1 workarounds (ignore + multicast + timeout
//!   fallback) so non-MEC names degrade instead of failing.
//! * [`dos`] — the orchestrator's ingress-threshold switch protecting
//!   the MEC DNS.
//! * [`ip_reuse`] — §5's public-IP point: many CDN customer domains
//!   behind one MEC address.
//! * [`experiments`] — turn-key reproductions of every table and figure,
//!   returning serializable [`workload::Figure`] data.
//! * [`city`] — the metro-scale capstone: a million flow-level UEs
//!   multiplexed through eNB ingress nodes against MEC vs cloud
//!   resolution, exercising the timing-wheel scheduler at depth.
//! * [`runner`] — the parallel trial runner the campaigns fan out on:
//!   per-trial derived seeds and index-ordered merges keep results
//!   bit-identical at any thread count.
//! * [`telemetry`] — serializable per-trial artifacts harvested from the
//!   shared `netsim::Telemetry` store: counters, histograms and the
//!   trace-vs-tap wireless-split cross-check.

pub mod city;
pub mod deployments;
pub mod dos;
pub mod ecosystem;
pub mod experiments;
pub mod fallback;
pub mod federation;
pub mod ip_reuse;
pub mod measurement;
pub mod runner;
pub mod telemetry;

pub use city::{city_experiment, city_experiment_with, CityConfig, CityDeployment, CityReport};
pub use deployments::{Deployment, DeploymentKind, TestbedConfig};
pub use dos::{DosPolicy, ResolverDirective};
pub use ecosystem::{Entity, Role};
pub use federation::{
    federation_experiment, federation_experiment_with, FederationConfig, FederationDeployment,
    FederationReport,
};
pub use measurement::{MeasuredQuery, QueryClient};
pub use runner::{derive_seed, Runner};
pub use telemetry::{TelemetryReport, TrialTelemetry};
