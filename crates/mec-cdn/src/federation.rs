//! The `federation` experiment: one C-DNS address, three MEC sites.
//!
//! The paper's single-MEC design leaves one failure domain: lose the
//! site and the UE loses the edge. This capstone federates the world of
//! the earlier experiments into three MEC sites and compares, under the
//! *same* UE mobility and the *same* regional outage, the three ways a
//! CDN can keep its C-DNS reachable:
//!
//! * **single-mec** — the paper's baseline: one MEC site, its resolver
//!   dialled directly. A regional outage takes the edge with it.
//! * **anycast-3site** — every site advertises one anycast C-DNS
//!   address; a BGP-like catchment layer ([`netsim::AnycastCatchment`])
//!   steers each client to its preferred advertised site, withdraws a
//!   dead site after a bounded reconvergence delay, and the stub's
//!   [`SendStrategy::CloudOnServfail`] policy rides the blackhole out by
//!   retransmitting the *same* address.
//! * **dns-select** — DNS-based site selection (GeoDNS): the client
//!   re-resolves the site address on a TTL grid and keeps the stale
//!   answer in between, so failover waits for TTL expiry plus the
//!   selection DNS's health-check lag.
//!
//! The UE hands off between radio regions mid-run (an inter-site
//! handoff — the federated world's expensive kind), then the serving
//! MEC region suffers a whole-site outage: node down, metro backhaul
//! partitioned, and — for anycast — a catchment withdrawal, all
//! composed by [`netsim::FaultSchedule::region_outage`]. The report
//! carries availability, p99 resolution latency, time-to-reconverge
//! after the outage and the cache-state cost of every serving-site
//! relocation (the new site's cache has never seen this UE's names).
//!
//! Deployments run as independent trials on the [`Runner`], so the
//! report is byte-identical at any `--threads N`.

use crate::measurement::{PlannedQuery, QueryClient};
use crate::runner::Runner;
use dns_server::plugins::{AuthoritativePlugin, CachePlugin, ForwardPlugin};
use dns_server::{DnsServer, SendStrategy, ServerConfig, Zone};
use dns_wire::Name;
use netsim::{
    AnycastCatchment, AnycastGateway, Cidr, FaultSchedule, Latency, LinkProfile, Network,
    Samples, SimDuration, SimTime,
};
use ran_sim::{EpcConfig, RadioProfile, Ran};
use std::net::{IpAddr, Ipv4Addr};
use workload::sites::MEC_CDN_ZONE;

/// The anycast C-DNS address every federated site advertises.
const ANYCAST: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 53);
/// The cloud resolver of last resort (the policy's refusal target).
const CLOUD: Ipv4Addr = Ipv4Addr::new(10, 44, 9, 1);
/// First query fires after the LTE attach completes (~100 ms).
const FIRST_QUERY: SimDuration = SimDuration::from_millis(300);
/// MEC sites in the federated deployments.
const SITES: usize = 3;

/// Per-site MEC DNS address.
fn site_dns_ip(site: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 100 + site as u8, 0, 10))
}

/// Per-site edge-cache address — what the site's DNS answers with, and
/// how an answer is attributed back to the site that served it.
fn site_cache_ip(site: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 100 + site as u8, 0, 20)
}

/// Per-site authoritative C-DNS address (the site resolver's upstream).
fn site_origin_ip(site: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 100 + site as u8, 0, 30))
}

/// Knobs of the federation run. All fault times sit off the query grid
/// so the interleaving is unambiguous.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Queries issued, one per [`FederationConfig::interval`] starting
    /// at 300 ms (after LTE attach).
    pub queries: usize,
    /// Query spacing.
    pub interval: SimDuration,
    /// Distinct CDN names the UE cycles through — the unit of
    /// cache-state locality a relocation loses.
    pub catalog: usize,
    /// When the UE hands off to the second radio region (inter-site).
    pub handoff_at: SimDuration,
    /// When the serving MEC region dies. Stays dead for the rest of the
    /// run — reconvergence, not restoration, is what's measured.
    pub outage_at: SimDuration,
    /// Catchment withdrawal propagation delay (the BGP-convergence
    /// analogue bounding anycast's time-to-reconverge).
    pub withdraw_delay: SimDuration,
    /// dns-select: TTL of the site-selection answer; the client
    /// re-resolves on this grid and is stale in between.
    pub select_ttl: SimDuration,
    /// dns-select: how long the selection DNS takes to notice a dead
    /// site (health-check lag).
    pub detect_delay: SimDuration,
    /// Stub query timeout before the first retransmission.
    pub query_timeout: SimDuration,
    /// Stub retransmissions per query.
    pub retries: u8,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            queries: 56,
            interval: SimDuration::from_millis(100),
            catalog: 6,
            handoff_at: SimDuration::from_millis(1_500),
            outage_at: SimDuration::from_millis(3_000),
            withdraw_delay: SimDuration::from_millis(200),
            select_ttl: SimDuration::from_millis(1_000),
            detect_delay: SimDuration::from_millis(500),
            query_timeout: SimDuration::from_millis(250),
            retries: 2,
        }
    }
}

impl FederationConfig {
    /// CI smoke: the same shape on a shorter clock.
    pub fn quick() -> Self {
        FederationConfig {
            queries: 30,
            catalog: 4,
            handoff_at: SimDuration::from_millis(1_000),
            outage_at: SimDuration::from_millis(2_000),
            ..FederationConfig::default()
        }
    }

    /// Virtual instant of query `i`.
    fn query_at(&self, i: usize) -> SimDuration {
        FIRST_QUERY + self.interval.mul_f64(i as f64)
    }
}

/// One deployment's behaviour under mobility plus the regional outage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FederationDeployment {
    /// `single-mec`, `anycast-3site` or `dns-select`.
    pub name: String,
    /// Queries issued.
    pub total: usize,
    /// Queries answered NOERROR.
    pub answered: usize,
    /// `answered / total`.
    pub availability: f64,
    /// 99th-percentile resolution latency over answered queries, ms.
    pub p99_ms: Option<f64>,
    /// Time from outage start to the first answer served by a
    /// *different* site, ms. `None` when the deployment never
    /// reconverged (single-mec has nowhere to go).
    pub reconverge_ms: Option<f64>,
    /// Serving-site sequence over answered queries, deduplicated
    /// (e.g. `[0, 1, 2]`: started at site 0, relocated twice).
    pub serving_sites: Vec<u8>,
    /// Serving-site changes (handoff-driven plus outage-driven).
    pub relocations: usize,
    /// Resolver cache hits summed over all sites.
    pub cache_hits: u64,
    /// Resolver cache misses summed over all sites.
    pub cache_misses: u64,
    /// Cold misses each relocation cost: `(misses - catalog) /
    /// relocations`. `None` without relocations.
    pub cache_loss_per_relocation: Option<f64>,
    /// Answers that came from the cloud resolver (must be 0 — every
    /// planned name is MEC-served; cloud is refusal-only).
    pub cloud_answers: usize,
    /// `stub.query` telemetry — must equal `total`.
    pub queries_sent: u64,
    /// `stub.timeout` telemetry — must equal `total - answered`.
    pub timeouts: u64,
}

/// The federation experiment's result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FederationReport {
    /// Root seed the per-deployment trials were derived from.
    pub seed: u64,
    /// Queries per deployment.
    pub queries: usize,
    /// Query spacing, ms.
    pub interval_ms: f64,
    /// Catalogue size (names per serving site to warm).
    pub catalog: usize,
    /// Inter-site handoff instant, ms.
    pub handoff_at_ms: f64,
    /// Regional-outage start, ms (the region stays dead).
    pub outage_at_ms: f64,
    /// Catchment withdrawal delay, ms.
    pub withdraw_delay_ms: f64,
    /// dns-select TTL, ms.
    pub select_ttl_ms: f64,
    /// `single-mec`, `anycast-3site`, `dns-select`.
    pub deployments: Vec<FederationDeployment>,
}

impl FederationReport {
    /// Plain-text rendering for `repro federation`.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "== federation — one C-DNS address, three MEC sites, one regional outage ==\n",
        );
        out.push_str(&format!(
            "{} queries @ {:.0}ms; inter-site handoff at {:.1}s; region dies at {:.1}s \
             (withdraw {:.0}ms, select TTL {:.0}ms)\n",
            self.queries,
            self.interval_ms,
            self.handoff_at_ms / 1000.0,
            self.outage_at_ms / 1000.0,
            self.withdraw_delay_ms,
            self.select_ttl_ms,
        ));
        out.push_str(&format!(
            "{:<14} {:>6} {:>9} {:>12} {:>7} {:>7} {:>7} {:>11}\n",
            "deployment", "avail", "p99(ms)", "reconv(ms)", "reloc", "hits", "misses", "loss/reloc"
        ));
        for d in &self.deployments {
            out.push_str(&format!(
                "{:<14} {:>6.3} {:>9} {:>12} {:>7} {:>7} {:>7} {:>11}\n",
                d.name,
                d.availability,
                d.p99_ms.map_or("-".into(), |v: f64| format!("{v:.1}")),
                d.reconverge_ms.map_or("-".into(), |v: f64| format!("{v:.1}")),
                d.relocations,
                d.cache_hits,
                d.cache_misses,
                d.cache_loss_per_relocation
                    .map_or("-".into(), |v: f64| format!("{v:.1}")),
            ));
        }
        out
    }
}

/// The three compared deployments, in report order.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    SingleMec,
    Anycast,
    DnsSelect,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::SingleMec => "single-mec",
            Kind::Anycast => "anycast-3site",
            Kind::DnsSelect => "dns-select",
        }
    }

    /// How many MEC sites this deployment builds.
    fn sites(self) -> usize {
        match self {
            Kind::SingleMec => 1,
            _ => SITES,
        }
    }

    /// Which site the regional outage takes down: the one serving the
    /// UE at `outage_at` (site 0 before the handoff moved the client,
    /// site 1 after — single-mec always serves from its only site).
    fn outage_site(self) -> usize {
        match self {
            Kind::SingleMec => 0,
            _ => 1,
        }
    }
}

/// dns-select's site choice for a query at `at`: the selection answer
/// from the last TTL boundary, computed from what the selection DNS
/// knew then — the client's radio region, and (after the health-check
/// lag) which site is dead. A pure function of the config, which is
/// exactly the point: GeoDNS failover is clocked by the TTL grid, not
/// by routing.
fn dns_select_site(cfg: &FederationConfig, at: SimDuration) -> usize {
    let ttl = cfg.select_ttl.as_nanos();
    let boundary = (at.as_nanos() / ttl) * ttl;
    let candidate = usize::from(boundary >= cfg.handoff_at.as_nanos());
    if candidate == 1 && boundary >= (cfg.outage_at + cfg.detect_delay).as_nanos() {
        2
    } else {
        candidate
    }
}

/// Builds and runs one deployment against the shared fault script.
fn run_deployment(kind: Kind, trial_seed: u64, cfg: &FederationConfig) -> FederationDeployment {
    assert!(
        cfg.handoff_at < cfg.outage_at,
        "the outage must hit the post-handoff serving site"
    );
    let names: Vec<Name> = (0..cfg.catalog)
        .map(|k| Name::parse(&format!("video{k}.demo1.{MEC_CDN_ZONE}")).expect("name parses"))
        .collect();

    let mut net = Network::new(trial_seed);
    let mut ran = Ran::build(&mut net, EpcConfig::default());
    // Two radio regions; the inter-site handoff crosses them.
    let enb_a = ran.add_enb_at_site(&mut net, 0);
    let enb_b = ran.add_enb_at_site(&mut net, 1);

    // MEC sites: a caching resolver forwarding misses to the site's own
    // authoritative C-DNS, which answers every catalogue name with the
    // *site's* edge cache — the answer address is the site attribution,
    // and a cold cache pays the extra hop to the C-DNS.
    let mut site_nodes = Vec::new();
    let mut origin_nodes = Vec::new();
    for site in 0..kind.sites() {
        let mut zone = Zone::new(Name::parse(MEC_CDN_ZONE).expect("zone parses"));
        for name in &names {
            zone.add_a(name.clone(), site_cache_ip(site), 300);
        }
        let origin = net.add_node(
            &format!("mec-cdns-{site}"),
            [site_origin_ip(site)],
            DnsServer::new(
                ServerConfig::default(),
                vec![Box::new(AuthoritativePlugin::new(vec![zone]))],
            ),
        );
        let resolver = net.add_node(
            &format!("mec-ldns-{site}"),
            [site_dns_ip(site)],
            DnsServer::new(
                ServerConfig {
                    processing: Latency::skewed(1.6, 2.6, 0.9),
                    ..ServerConfig::default()
                },
                vec![
                    Box::new(CachePlugin::new(256)),
                    Box::new(ForwardPlugin::new(site_origin_ip(site))),
                ],
            ),
        );
        net.connect(
            resolver,
            origin,
            LinkProfile::with_latency(Latency::ConstantMs(3.0)),
        );
        site_nodes.push(resolver);
        origin_nodes.push(origin);
    }

    // The cloud resolver of last resort, a WAN away. It serves nothing
    // the plan asks for; the policy only visits it on refusal.
    let cloud = net.add_node(
        "cloud-resolver",
        [IpAddr::V4(CLOUD)],
        DnsServer::new(
            ServerConfig::default(),
            vec![Box::new(AuthoritativePlugin::new(vec![Zone::new(
                Name::parse("example.test").expect("zone parses"),
            )]))],
        ),
    );
    net.connect(
        ran.epc.pgw,
        cloud,
        LinkProfile::with_latency(Latency::ConstantMs(25.0)),
    );
    net.add_default_route(cloud, ran.epc.pgw);

    // Metro wiring. Anycast interposes the aggregation gateway running
    // the catchment; the other deployments dial sites directly. Hop
    // latencies are matched (0.2 + 0.3 ≈ 0.5) so the comparison stays
    // about addressing, not cable length.
    let mut catchment = None;
    let mut site_links = Vec::new();
    match kind {
        Kind::Anycast => {
            let c = AnycastCatchment::new(
                IpAddr::V4(ANYCAST),
                (0..SITES).map(site_dns_ip),
            )
            .with_withdraw_delay(cfg.withdraw_delay);
            // The P-GW's public address is the client the catchment
            // sees; it prefers the sites in metro order.
            c.set_preference(Cidr::host(ran.pgw_public_ip()), vec![0, 1, 2]);
            let agg = net.add_node(
                "metro-agg",
                [IpAddr::V4(Ipv4Addr::new(10, 99, 0, 1))],
                AnycastGateway::new(c.clone()),
            );
            net.connect(
                ran.epc.pgw,
                agg,
                LinkProfile::with_latency(Latency::ConstantMs(0.2)),
            );
            net.add_route(ran.epc.pgw, Cidr::host(IpAddr::V4(ANYCAST)), agg);
            net.add_default_route(agg, ran.epc.pgw);
            for &node in &site_nodes {
                site_links.push(net.connect(
                    agg,
                    node,
                    LinkProfile::with_latency(Latency::ConstantMs(0.3)),
                ));
                net.add_default_route(node, agg);
            }
            catchment = Some(c);
        }
        _ => {
            for &node in &site_nodes {
                site_links.push(net.connect(
                    ran.epc.pgw,
                    node,
                    LinkProfile::with_latency(Latency::ConstantMs(0.5)),
                ));
                net.add_default_route(node, ran.epc.pgw);
            }
        }
    }

    // The UE's query plan. Silence means "my site died — the address is
    // still right, routing is reconverging", so retransmit it; REFUSED
    // means "the edge cannot resolve this", so go to the cloud.
    let plan: Vec<PlannedQuery> = (0..cfg.queries)
        .map(|i| {
            let at = cfg.query_at(i);
            let target = match kind {
                Kind::SingleMec => site_dns_ip(0),
                Kind::Anycast => IpAddr::V4(ANYCAST),
                Kind::DnsSelect => site_dns_ip(dns_select_site(cfg, at)),
            };
            PlannedQuery {
                at,
                name: names[i % cfg.catalog].clone(),
                strategy: SendStrategy::CloudOnServfail {
                    anycast: target,
                    cloud: IpAddr::V4(CLOUD),
                },
                ecs: None,
            }
        })
        .collect();
    let mut qc = QueryClient::new(plan);
    qc.engine_mut().query_timeout = cfg.query_timeout;
    qc.engine_mut().retries = cfg.retries;
    let telemetry = netsim::Telemetry::new();
    qc.engine_mut().set_telemetry(telemetry.clone());
    let ue = ran.attach_ue(&mut net, "ue", qc, enb_a, RadioProfile::Lte);

    // The regional outage: the serving site's node dies, its metro
    // backhaul partitions, and (anycast) its advertisement is
    // withdrawn — one composed fault, dead until far past the run.
    let outage_site = kind.outage_site();
    let outage_end = cfg.outage_at + SimDuration::from_secs(60);
    FaultSchedule::new()
        .region_outage(
            &[site_nodes[outage_site], origin_nodes[outage_site]],
            &[site_links[outage_site]],
            catchment.as_ref().map(|c| (c, outage_site)),
            cfg.outage_at..outage_end,
        )
        .install(&mut net);

    // Mobility: run to the handoff, relocate the bearer (S1, the
    // expensive kind), and — for anycast — the client now enters the
    // anycast cloud at its new region, so its catchment preference
    // walks with it.
    net.run_until(SimTime::ZERO + cfg.handoff_at);
    ran.handoff(&mut net, ue, enb_b, RadioProfile::Lte);
    if let Some(c) = &catchment {
        c.set_preference(Cidr::host(ran.pgw_public_ip()), vec![1, 2, 0]);
    }
    net.run();

    // Harvest, in issue order (tags are plan indices).
    let mut measured: Vec<_> = net.behavior::<QueryClient>(ue.node).measured.clone();
    measured.sort_by_key(|m| m.outcome.tag);
    let outage_start = SimTime::ZERO + cfg.outage_at;
    let site_of = |addr: Ipv4Addr| (0..SITES).find(|&s| site_cache_ip(s) == addr);
    let mut samples = Samples::new();
    let (mut answered, mut timed_out, mut cloud_answers) = (0usize, 0usize, 0usize);
    let mut serving_sites: Vec<u8> = Vec::new();
    let mut reconverge_ms: Option<f64> = None;
    let mut cold_pairs: std::collections::BTreeSet<(usize, usize)> = Default::default();
    for m in &measured {
        if m.outcome.timed_out {
            timed_out += 1;
            continue;
        }
        if !m.outcome.rcode.is_ok() {
            continue;
        }
        answered += 1;
        samples.record(m.outcome.rtt);
        if m.outcome.used_fallback {
            cloud_answers += 1;
        }
        let site = m.outcome.addrs.first().copied().and_then(site_of);
        if let Some(site) = site {
            cold_pairs.insert((site, m.outcome.tag as usize % cfg.catalog));
            if serving_sites.last() != Some(&(site as u8)) {
                serving_sites.push(site as u8);
            }
            // Reconvergence: the first answer after the outage served
            // by a *different* site (in-flight replies from the dying
            // site do not count as recovery).
            if site != outage_site && m.finished >= outage_start && reconverge_ms.is_none() {
                reconverge_ms = Some((m.finished - outage_start).as_millis_f64());
            }
        }
    }
    let relocations = serving_sites.len().saturating_sub(1);

    // Cache accounting across the sites.
    let (mut hits, mut misses) = (0u64, 0u64);
    for &node in &site_nodes {
        let cache = net
            .behavior::<DnsServer>(node)
            .plugin::<CachePlugin>(0)
            .expect("cache plugin at index 0");
        hits += cache.hits();
        misses += cache.misses();
    }

    // Cross-validate the measurement against independent observers
    // before reporting — a report that disagrees with the telemetry or
    // the cache counters is a bug, not a result.
    let total = measured.len();
    assert_eq!(total, cfg.queries, "client lost outcomes ({})", kind.label());
    assert_eq!(
        telemetry.counter("stub.query"),
        cfg.queries as u64,
        "telemetry lost issued queries ({})",
        kind.label()
    );
    assert_eq!(
        telemetry.counter("stub.timeout") as usize,
        timed_out,
        "telemetry timeouts disagree with measured outcomes ({})",
        kind.label()
    );
    assert_eq!(
        net.behavior::<DnsServer>(cloud).queries_received,
        0,
        "cloud consulted without a refusal ({})",
        kind.label()
    );
    // Every serving-site relocation re-pays the catalogue in cold
    // misses, and nothing else misses: total misses must equal the
    // number of distinct (site, name) pairs the client was answered
    // from — one cold fill per name per site it lands on.
    assert_eq!(
        misses,
        cold_pairs.len() as u64,
        "cache misses disagree with the cold (site, name) pairs ({})",
        kind.label()
    );

    FederationDeployment {
        name: kind.label().to_string(),
        total,
        answered,
        availability: if total == 0 {
            0.0
        } else {
            answered as f64 / total as f64
        },
        p99_ms: samples.percentile(99.0),
        reconverge_ms,
        serving_sites,
        relocations,
        cache_hits: hits,
        cache_misses: misses,
        cache_loss_per_relocation: if relocations == 0 {
            None
        } else {
            Some((misses as f64 - cfg.catalog as f64) / relocations as f64)
        },
        cloud_answers,
        queries_sent: telemetry.counter("stub.query"),
        timeouts: telemetry.counter("stub.timeout"),
    }
}

/// Runs the federation experiment serially. See
/// [`federation_experiment_with`].
pub fn federation_experiment(seed: u64, cfg: &FederationConfig) -> FederationReport {
    federation_experiment_with(seed, &Runner::default(), cfg)
}

/// Runs the three deployments as independent trials on `runner`
/// (derived seeds, index-ordered merge — byte-identical at any thread
/// count) and assembles the [`FederationReport`].
pub fn federation_experiment_with(
    seed: u64,
    runner: &Runner,
    cfg: &FederationConfig,
) -> FederationReport {
    let kinds = [Kind::SingleMec, Kind::Anycast, Kind::DnsSelect];
    let deployments = runner.run_seeded(kinds.len(), seed, |idx, trial_seed| {
        run_deployment(kinds[idx], trial_seed, cfg)
    });
    FederationReport {
        seed,
        queries: cfg.queries,
        interval_ms: cfg.interval.as_millis_f64(),
        catalog: cfg.catalog,
        handoff_at_ms: cfg.handoff_at.as_millis_f64(),
        outage_at_ms: cfg.outage_at.as_millis_f64(),
        withdraw_delay_ms: cfg.withdraw_delay.as_millis_f64(),
        select_ttl_ms: cfg.select_ttl.as_millis_f64(),
        deployments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_site_is_stale_until_ttl_and_detection() {
        let cfg = FederationConfig::default();
        // Before the handoff boundary: site 0.
        assert_eq!(dns_select_site(&cfg, SimDuration::from_millis(900)), 0);
        // Handed off at 1.5 s but the 1 s boundary predates it: stale 0.
        assert_eq!(dns_select_site(&cfg, SimDuration::from_millis(1_900)), 0);
        // The 2 s boundary sees the new region.
        assert_eq!(dns_select_site(&cfg, SimDuration::from_millis(2_100)), 1);
        // Outage at 3 s, detected at 3.5 s; the 3 s boundary is stale.
        assert_eq!(dns_select_site(&cfg, SimDuration::from_millis(3_900)), 1);
        // The 4 s boundary routes around the dead site.
        assert_eq!(dns_select_site(&cfg, SimDuration::from_millis(4_100)), 2);
    }

    #[test]
    fn quick_report_tells_the_availability_story() {
        let r = federation_experiment(2020, &FederationConfig::quick());
        assert_eq!(r.deployments.len(), 3);
        let single = &r.deployments[0];
        let anycast = &r.deployments[1];
        let select = &r.deployments[2];
        assert_eq!(single.name, "single-mec");
        assert_eq!(anycast.name, "anycast-3site");
        assert_eq!(select.name, "dns-select");
        // The headline: anycast rides the outage out, single-mec sinks
        // with its site, GeoDNS lands in between (TTL-bounded).
        assert!(
            anycast.availability > single.availability,
            "anycast {} must beat single-mec {}",
            anycast.availability,
            single.availability
        );
        assert!(anycast.availability >= select.availability);
        // Single-mec has nowhere to reconverge to.
        assert_eq!(single.reconverge_ms, None);
        assert!(anycast.reconverge_ms.is_some());
        // Mobility walked the federated deployments across all sites.
        assert_eq!(anycast.serving_sites, vec![0, 1, 2]);
        assert_eq!(select.serving_sites, vec![0, 1, 2]);
        assert_eq!(single.serving_sites, vec![0]);
        // Nothing ever left the edge.
        for d in &r.deployments {
            assert_eq!(d.cloud_answers, 0);
            assert_eq!(d.queries_sent as usize, d.total);
            assert_eq!(d.timeouts as usize, d.total - d.answered);
        }
    }

    #[test]
    fn anycast_reconverges_at_routing_speed_geodns_at_ttl_speed() {
        let cfg = FederationConfig::quick();
        let r = federation_experiment(7, &cfg);
        let anycast = &r.deployments[1];
        let select = &r.deployments[2];
        let anycast_reconv = anycast.reconverge_ms.expect("anycast reconverges");
        let select_reconv = select.reconverge_ms.expect("dns-select reconverges");
        // Anycast's bound: withdrawal propagation plus one stub
        // retry cycle (timeout + backoff) plus path latency.
        let bound = cfg.withdraw_delay.as_millis_f64()
            + 3.0 * cfg.query_timeout.as_millis_f64()
            + 100.0;
        assert!(
            anycast_reconv >= cfg.withdraw_delay.as_millis_f64(),
            "no alternate site can answer before the withdrawal ({anycast_reconv} ms)"
        );
        assert!(
            anycast_reconv <= bound,
            "anycast reconvergence {anycast_reconv} ms above bound {bound} ms"
        );
        assert!(
            select_reconv > anycast_reconv,
            "GeoDNS ({select_reconv} ms) cannot beat routing ({anycast_reconv} ms)"
        );
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let cfg = FederationConfig::quick();
        let serial = federation_experiment_with(77, &Runner::new(1), &cfg);
        let parallel = federation_experiment_with(77, &Runner::new(4), &cfg);
        assert_eq!(serial, parallel);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }
}
