//! Table 2: entities and roles in the MEC-CDN ecosystem.
//!
//! The paper's Q3 ("Who owns performance in MEC-CDN?") tabulates seven
//! roles and observes that one entity can subsume several — Verizon is
//! both a cellular and a CDN/DNS provider; a cloud provider can proxy a
//! cellular provider's MEC. These types make deployment descriptions
//! explicit about who runs what, and the experiments use them to label
//! which role each latency component belongs to.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A role from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Operating RAN and cellular core network.
    CellularProvider,
    /// Providing content caches on CDN domains hosted on server nodes.
    CdnProvider,
    /// Routing requests to closest CDN domain servers.
    DnsProvider,
    /// Delivering web services that use CDNs.
    WebProvider,
    /// Providing server infrastructure to one or more of the above.
    CloudProvider,
    /// Providing a consolidated service spanning multiple CDNs.
    CdnBroker,
    /// Providing MEC servers that host CDN domains.
    MecProvider,
}

impl Role {
    /// All seven roles, in Table 2 order.
    pub fn all() -> [Role; 7] {
        [
            Role::CellularProvider,
            Role::CdnProvider,
            Role::DnsProvider,
            Role::WebProvider,
            Role::CloudProvider,
            Role::CdnBroker,
            Role::MecProvider,
        ]
    }

    /// The role's responsibility, as Table 2 words it.
    pub fn responsibility(self) -> &'static str {
        match self {
            Role::CellularProvider => "Operating RAN and cellular core network",
            Role::CdnProvider => {
                "Providing content caches on CDN domains hosted on some server nodes"
            }
            Role::DnsProvider => "Routing requests to closest CDN domain servers",
            Role::WebProvider => {
                "Delivering web services that use CDNs to provide better services to end users"
            }
            Role::CloudProvider => {
                "Providing server infrastructure to one or more of the above"
            }
            Role::CdnBroker => {
                "Providing a consolidated service spanning multiple CDNs to CDN customers"
            }
            Role::MecProvider => "Providing MEC servers that host CDN domains",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::CellularProvider => "Cellular Provider",
            Role::CdnProvider => "CDN Provider",
            Role::DnsProvider => "DNS Provider",
            Role::WebProvider => "Web Provider",
            Role::CloudProvider => "Cloud Provider",
            Role::CdnBroker => "CDN Broker",
            Role::MecProvider => "MEC Provider",
        };
        write!(f, "{s}")
    }
}

/// A named participant holding one or more roles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Display name.
    pub name: String,
    /// Roles the entity subsumes.
    pub roles: BTreeSet<Role>,
}

impl Entity {
    /// An entity with the given roles.
    pub fn new(name: &str, roles: impl IntoIterator<Item = Role>) -> Self {
        Entity {
            name: name.to_string(),
            roles: roles.into_iter().collect(),
        }
    }

    /// True if the entity holds `role`.
    pub fn has(&self, role: Role) -> bool {
        self.roles.contains(&role)
    }
}

/// An ecosystem: the set of entities in a deployment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ecosystem {
    /// Participants.
    pub entities: Vec<Entity>,
}

impl Ecosystem {
    /// Entities holding `role`.
    pub fn holders(&self, role: Role) -> Vec<&Entity> {
        self.entities.iter().filter(|e| e.has(role)).collect()
    }

    /// Roles no entity holds — the paper's "invisible performance
    /// owners" question starts from knowing who owns what.
    pub fn unfilled_roles(&self) -> Vec<Role> {
        Role::all()
            .into_iter()
            .filter(|&r| self.holders(r).is_empty())
            .collect()
    }

    /// The MEC-CDN proposal's ecosystem: the MEC provider subsumes the
    /// DNS role for the edge (running L-DNS and hosting C-DNS), which is
    /// exactly the role consolidation that makes single-hop resolution
    /// possible.
    pub fn mec_cdn_proposal() -> Ecosystem {
        Ecosystem {
            entities: vec![
                Entity::new(
                    "edge operator",
                    [
                        Role::CellularProvider,
                        Role::MecProvider,
                        Role::DnsProvider,
                    ],
                ),
                Entity::new("cdn operator", [Role::CdnProvider, Role::DnsProvider]),
                Entity::new("content site", [Role::WebProvider]),
            ],
        }
    }

    /// Today's fragmented ecosystem (the Figure 2/3 world): distinct
    /// cellular, DNS, CDN, cloud and broker entities.
    pub fn status_quo() -> Ecosystem {
        Ecosystem {
            entities: vec![
                Entity::new("carrier", [Role::CellularProvider]),
                Entity::new("public resolver", [Role::DnsProvider]),
                Entity::new("akamai", [Role::CdnProvider, Role::DnsProvider]),
                Entity::new("fastly", [Role::CdnProvider, Role::DnsProvider]),
                Entity::new(
                    "aws",
                    [Role::CloudProvider, Role::CdnProvider, Role::DnsProvider],
                ),
                Entity::new("broker", [Role::CdnBroker]),
                Entity::new("travel site", [Role::WebProvider]),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_seven_roles_with_responsibilities() {
        let roles = Role::all();
        assert_eq!(roles.len(), 7);
        for r in roles {
            assert!(!r.responsibility().is_empty());
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn entity_can_subsume_multiple_roles() {
        // The paper's example: "cellular providers are known to include
        // DNS or CDN provider roles (e.g., Verizon)".
        let verizon = Entity::new(
            "verizon",
            [Role::CellularProvider, Role::DnsProvider, Role::CdnProvider],
        );
        assert!(verizon.has(Role::CellularProvider));
        assert!(verizon.has(Role::CdnProvider));
        assert!(!verizon.has(Role::CdnBroker));
    }

    #[test]
    fn proposal_consolidates_dns_into_the_mec_provider() {
        let eco = Ecosystem::mec_cdn_proposal();
        let dns_holders = eco.holders(Role::DnsProvider);
        assert!(dns_holders.iter().any(|e| e.has(Role::MecProvider)),
            "the MEC provider must own a DNS role for single-hop resolution");
        // The broker disappears from the proposal.
        assert!(eco.holders(Role::CdnBroker).is_empty());
    }

    #[test]
    fn status_quo_has_no_mec_provider() {
        let eco = Ecosystem::status_quo();
        assert!(eco.unfilled_roles().contains(&Role::MecProvider));
        assert!(!eco.holders(Role::CdnBroker).is_empty());
    }

    #[test]
    fn ecosystem_serializes() {
        let eco = Ecosystem::mec_cdn_proposal();
        let json = serde_json::to_string(&eco).unwrap();
        let back: Ecosystem = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entities, eco.entities);
    }
}
