//! §3's P1 workarounds: what happens to queries the MEC DNS does not
//! serve.
//!
//! *"A simple workaround ... would have the MEC DNS ignore queries not
//! related to MEC-CDN, and have DNS requests be multicast to both MEC
//! DNS and the network's L-DNS, or even be forwarded to L-DNS on timeout
//! from MEC DNS."* [`P1Policy`] names the three client-side dispatch
//! policies; the `fallback` experiment in [`crate::experiments`]
//! measures their consequences: best-effort degradation, never
//! unavailability.

use dns_server::SendStrategy;
use netsim::SimDuration;
use std::net::IpAddr;

/// How a UE dispatches DNS queries when a MEC DNS is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P1Policy {
    /// Only the MEC DNS — non-MEC names fail (the strawman).
    MecOnly,
    /// Multicast to the MEC DNS and the provider's L-DNS; first answer
    /// wins.
    MulticastBoth,
    /// Ask the MEC DNS; fall back to the provider's L-DNS after the
    /// given silence.
    FallbackAfter(SimDuration),
}

impl P1Policy {
    /// The stub-engine strategy implementing this policy.
    pub fn strategy(self, mec_dns: IpAddr, provider_ldns: IpAddr) -> SendStrategy {
        match self {
            P1Policy::MecOnly => SendStrategy::Unicast(mec_dns),
            P1Policy::MulticastBoth => SendStrategy::Multicast(vec![mec_dns, provider_ldns]),
            P1Policy::FallbackAfter(timeout) => SendStrategy::FallbackOnTimeout {
                primary: mec_dns,
                fallback: provider_ldns,
                timeout,
            },
        }
    }

    /// Label for figures.
    pub fn label(self) -> &'static str {
        match self {
            P1Policy::MecOnly => "mec-only",
            P1Policy::MulticastBoth => "multicast",
            P1Policy::FallbackAfter(_) => "fallback-on-timeout",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_map_to_strategies() {
        let mec: IpAddr = "10.96.0.1".parse().unwrap();
        let provider: IpAddr = "10.44.9.1".parse().unwrap();
        assert_eq!(
            P1Policy::MecOnly.strategy(mec, provider),
            SendStrategy::Unicast(mec)
        );
        match P1Policy::MulticastBoth.strategy(mec, provider) {
            SendStrategy::Multicast(v) => assert_eq!(v, vec![mec, provider]),
            other => panic!("{other:?}"),
        }
        match P1Policy::FallbackAfter(SimDuration::from_millis(80)).strategy(mec, provider) {
            SendStrategy::FallbackOnTimeout {
                primary,
                fallback,
                timeout,
            } => {
                assert_eq!(primary, mec);
                assert_eq!(fallback, provider);
                assert_eq!(timeout, SimDuration::from_millis(80));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            P1Policy::MecOnly.label(),
            P1Policy::MulticastBoth.label(),
            P1Policy::FallbackAfter(SimDuration::ZERO).label(),
        ];
        assert_eq!(
            labels.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
