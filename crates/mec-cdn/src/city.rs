//! The `city` experiment: a million UEs against the MEC L-DNS.
//!
//! Everything before this experiment attached a handful of UEs and ran
//! tens of queries; the paper's argument is metro-scale. Here a
//! [`workload::UeFleet`] of flow-level UEs (compact per-UE state, Zipf
//! content popularity, diurnal arrival thinning) multiplexes through a
//! bounded set of eNB ingress nodes, each eNB batching thousands of UEs
//! behind one simulator node. Two deployments face the same city:
//!
//! * **mec-ldns** — the paper's P1: a resolver *in* the MEC, one radio
//!   hop from the eNBs, forwarding cache misses across the WAN to the
//!   CDN's authoritative DNS.
//! * **cloud-resolver** — the baseline: the same resolver software
//!   across the WAN (a cloud public resolver), close to the
//!   authoritative but far from the UEs.
//!
//! The report carries the paper-facing metrics (cache hit ratio, p50/
//! p99/max resolution latency) plus the scheduler counters threaded out
//! of `netsim::stats` (events executed, peak pending, wheel cascades) so
//! `bench_city` can derive events/sec without ad-hoc instrumentation.
//! Deployments run as independent trials on the [`Runner`], so the
//! report is byte-identical at any `--threads N`.

use crate::runner::Runner;
use dns_server::plugins::{AuthoritativePlugin, CachePlugin, ForwardPlugin};
use dns_server::{DnsServer, ServerConfig, Zone};
use dns_wire::{Message, Name, Rcode, RrType};
use netsim::{
    Datagram, Latency, LinkProfile, Network, NodeBehavior, NodeContext, Samples, SimDuration,
    SimTime, TimerToken,
};
use std::cell::RefCell;
use std::net::{IpAddr, Ipv4Addr};
use std::rc::Rc;
use workload::{DiurnalCurve, UeAction, UeConfig, UeFleet};

/// First ephemeral port (`netsim` allocates 49152..=65535 per node).
const EPHEMERAL_BASE: u16 = 49152;
/// Ephemeral ports per node — the eNB's outstanding-query table size.
const EPHEMERAL_SPAN: usize = 16384;

/// Knobs of the city campaign.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// UEs in the city.
    pub ues: u32,
    /// eNB ingress nodes the UEs multiplex through.
    pub enbs: u32,
    /// Distinct content names the city requests.
    pub catalog: u32,
    /// Zipf exponent of content popularity.
    pub alpha: f64,
    /// Mean per-UE candidate interarrival at the diurnal peak.
    pub peak_interarrival: SimDuration,
    /// Simulated window (one compressed diurnal "day").
    pub window: SimDuration,
    /// Resolver cache capacity, entries.
    pub cache_entries: usize,
}

impl CityConfig {
    /// The committed campaign: 1M UEs, 32 eNBs, a 120 s compressed day.
    pub fn full() -> Self {
        CityConfig {
            ues: 1_000_000,
            enbs: 32,
            catalog: 120_000,
            alpha: 1.0,
            peak_interarrival: SimDuration::from_secs(60),
            window: SimDuration::from_secs(120),
            cache_entries: 65_536,
        }
    }

    /// CI smoke: 20k UEs, same shape, seconds of wall time.
    pub fn quick() -> Self {
        CityConfig {
            ues: 20_000,
            enbs: 8,
            catalog: 5_000,
            alpha: 1.0,
            peak_interarrival: SimDuration::from_secs(5),
            window: SimDuration::from_secs(10),
            cache_entries: 4_096,
        }
    }
}

/// One deployment's results.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CityDeployment {
    /// `mec-ldns` or `cloud-resolver`.
    pub name: String,
    /// DNS queries the city issued.
    pub queries: u64,
    /// Queries answered NOERROR.
    pub answered: u64,
    /// Queries answered SERVFAIL (or any non-NOERROR rcode).
    pub servfail: u64,
    /// Replies that no longer matched an outstanding query (late reply
    /// after its ephemeral port was reused) plus overwritten slots.
    pub lost: u64,
    /// Candidate arrivals thinned out by the diurnal trough (detached).
    pub thinned: u64,
    /// Resolver cache hits.
    pub cache_hits: u64,
    /// Resolver cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub cache_hit_ratio: f64,
    /// Median resolution latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile resolution latency, ms.
    pub p99_ms: f64,
    /// Worst resolution latency, ms.
    pub max_ms: f64,
    /// Simulator events executed (from [`netsim::SchedStats`]).
    pub sim_events: u64,
    /// Peak concurrently-pending events — ≈ the UE count, since every
    /// UE always holds its next-arrival timer.
    pub max_pending_events: u64,
    /// Timing-wheel upper-level cascades over the run.
    pub wheel_cascades: u64,
}

/// The city campaign's result: config echo + one entry per deployment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CityReport {
    /// Root seed the per-deployment trials were derived from.
    pub seed: u64,
    /// UEs in the city.
    pub ues: u32,
    /// eNB ingress nodes.
    pub enbs: u32,
    /// Content catalogue size.
    pub catalog: u32,
    /// Zipf exponent.
    pub alpha: f64,
    /// Peak mean interarrival, ms.
    pub peak_interarrival_ms: f64,
    /// Simulated window, ms.
    pub window_ms: f64,
    /// Resolver cache capacity.
    pub cache_entries: u64,
    /// `mec-ldns` then `cloud-resolver`.
    pub deployments: Vec<CityDeployment>,
}

impl CityReport {
    /// Plain-text rendering for `repro city`.
    pub fn render(&self) -> String {
        let mut out = String::from("== city — a metro of UEs against MEC vs cloud resolution ==\n");
        out.push_str(&format!(
            "{} UEs on {} eNBs, {}-name catalogue (Zipf {:.1}), {:.0}s window\n",
            self.ues,
            self.enbs,
            self.catalog,
            self.alpha,
            self.window_ms / 1000.0,
        ));
        out.push_str(&format!(
            "{:<15} {:>9} {:>8} {:>8} {:>8} {:>10} {:>12}\n",
            "deployment", "queries", "hit%", "p50(ms)", "p99(ms)", "events", "peak-pending"
        ));
        for d in &self.deployments {
            out.push_str(&format!(
                "{:<15} {:>9} {:>8.1} {:>8.2} {:>8.2} {:>10} {:>12}\n",
                d.name,
                d.queries,
                d.cache_hit_ratio * 100.0,
                d.p50_ms,
                d.p99_ms,
                d.sim_events,
                d.max_pending_events,
            ));
        }
        out
    }
}

/// One in-flight query slot, keyed by the eNB's ephemeral port.
#[derive(Clone, Copy)]
struct Outstanding {
    sent: SimTime,
    live: bool,
}

/// An eNB ingress node: hosts a contiguous slice of the shared fleet,
/// drives each UE's arrival timer, crafts the DNS queries and matches
/// replies back by ephemeral port.
struct Enb {
    fleet: Rc<RefCell<UeFleet>>,
    names: Rc<Vec<Name>>,
    resolver: IpAddr,
    lo: u32,
    hi: u32,
    outstanding: Vec<Outstanding>,
    samples: Samples,
    queries: u64,
    answered: u64,
    servfail: u64,
    lost: u64,
    thinned: u64,
}

impl Enb {
    fn new(fleet: Rc<RefCell<UeFleet>>, names: Rc<Vec<Name>>, resolver: IpAddr, lo: u32, hi: u32) -> Self {
        Enb {
            fleet,
            names,
            resolver,
            lo,
            hi,
            outstanding: vec![
                Outstanding {
                    sent: SimTime::ZERO,
                    live: false,
                };
                EPHEMERAL_SPAN
            ],
            samples: Samples::new(),
            queries: 0,
            answered: 0,
            servfail: 0,
            lost: 0,
            thinned: 0,
        }
    }
}

impl NodeBehavior for Enb {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        let mut fleet = self.fleet.borrow_mut();
        for ue in self.lo..self.hi {
            let dt = fleet.first_arrival(ue);
            ctx.set_timer(dt, u64::from(ue));
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, data: u64) {
        let ue = data as u32;
        let action = self.fleet.borrow_mut().next_action(ue, ctx.now());
        match action {
            UeAction::Query { content, next_in } => {
                let name = self.names[content as usize].clone();
                // Transaction id = low 16 bits of the query count; the
                // reply is matched by ephemeral port, the id is cosmetic.
                let query = Message::query(self.queries as u16, name, RrType::A);
                let bytes = query.encode().expect("city query encodes");
                let port = ctx.send(self.resolver, 53, bytes);
                let slot = &mut self.outstanding[(port - EPHEMERAL_BASE) as usize];
                if slot.live {
                    // 16384 in-flight queries on one eNB: the reply to
                    // the evicted slot will be counted lost.
                    self.lost += 1;
                }
                *slot = Outstanding {
                    sent: ctx.now(),
                    live: true,
                };
                self.queries += 1;
                ctx.set_timer(next_in, u64::from(ue));
            }
            UeAction::Detached { next_in } => {
                self.thinned += 1;
                ctx.set_timer(next_in, u64::from(ue));
            }
            UeAction::Done => {}
        }
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
        let Some(idx) = dgram.dst_port.checked_sub(EPHEMERAL_BASE) else {
            self.lost += 1;
            return;
        };
        let Some(slot) = self.outstanding.get_mut(idx as usize) else {
            self.lost += 1;
            return;
        };
        if !slot.live {
            self.lost += 1;
            return;
        }
        slot.live = false;
        match Message::decode(&dgram.payload) {
            Ok(m) if m.header.rcode == Rcode::NoError => {
                self.answered += 1;
                self.samples.record(ctx.now() - slot.sent);
            }
            _ => self.servfail += 1,
        }
    }
}

/// Builds and runs one deployment; `mec` selects resolver placement.
fn run_deployment(mec: bool, trial_seed: u64, cfg: &CityConfig) -> CityDeployment {
    // Shared structure: the content namespace and the fleet.
    let names: Vec<Name> = (0..cfg.catalog)
        .map(|i| Name::parse(&format!("c{i}.cdn.city.test")).expect("catalog name parses"))
        .collect();
    let names = Rc::new(names);
    let fleet = Rc::new(RefCell::new(UeFleet::new(
        UeConfig {
            ues: cfg.ues,
            catalog: cfg.catalog,
            alpha: cfg.alpha,
            peak_interarrival: cfg.peak_interarrival,
            window: cfg.window,
            curve: DiurnalCurve::metro_day(cfg.window),
        },
        trial_seed,
    )));

    let mut net = Network::new(trial_seed);

    // The CDN's authoritative DNS, answering every catalogue name.
    let mut zone = Zone::new(Name::parse("cdn.city.test").expect("apex parses"));
    for (i, name) in names.iter().enumerate() {
        let i = i as u32;
        zone.add_a(
            name.clone(),
            Ipv4Addr::new(198, 18, (i >> 8) as u8, i as u8),
            300,
        );
    }
    let origin_ip: IpAddr = "203.0.113.53".parse().expect("origin ip");
    let origin = net.add_node(
        "cdn-adns",
        [origin_ip],
        DnsServer::new(
            ServerConfig::default(),
            vec![Box::new(AuthoritativePlugin::new(vec![zone]))],
        ),
    );

    // The resolver under test: cache + forward-to-authoritative.
    let resolver_ip: IpAddr = "10.96.0.10".parse().expect("resolver ip");
    let resolver = net.add_node(
        if mec { "mec-ldns" } else { "cloud-resolver" },
        [resolver_ip],
        DnsServer::new(
            ServerConfig::default(),
            vec![
                Box::new(CachePlugin::new(cfg.cache_entries)),
                Box::new(ForwardPlugin::new(origin_ip)),
            ],
        ),
    );
    // Placement: the MEC resolver sits a metro hop from the authoritative
    // and one radio+backhaul hop from the eNBs; the cloud resolver sits
    // next to the authoritative but a WAN away from the city.
    let resolver_origin = if mec {
        LinkProfile::with_latency(Latency::skewed(18.0, 24.0, 5.0))
    } else {
        LinkProfile::with_latency(Latency::skewed(2.0, 4.0, 1.0))
    };
    net.connect(resolver, origin, resolver_origin);

    // eNBs, each hosting a contiguous slice of the fleet.
    let enb_access = if mec {
        // LTE air + S1 into the collocated MEC: the paper's P1 premise.
        LinkProfile::with_latency(Latency::skewed(9.0, 13.0, 3.0))
    } else {
        // The same air interface, then the WAN to the cloud resolver.
        LinkProfile::with_latency(Latency::skewed(28.0, 36.0, 6.0))
    };
    let per_enb = cfg.ues.div_ceil(cfg.enbs);
    let mut enbs = Vec::new();
    for e in 0..cfg.enbs {
        let lo = e * per_enb;
        let hi = ((e + 1) * per_enb).min(cfg.ues);
        if lo >= hi {
            break;
        }
        let ip: IpAddr = IpAddr::V4(Ipv4Addr::new(10, 128, (e >> 8) as u8, (e & 0xFF) as u8 + 1));
        let enb = net.add_node(
            &format!("enb-{e}"),
            [ip],
            Enb::new(fleet.clone(), names.clone(), resolver_ip, lo, hi),
        );
        net.connect(enb, resolver, enb_access.clone());
        enbs.push(enb);
    }

    net.run();

    // Harvest.
    let mut samples = Samples::new();
    let (mut queries, mut answered, mut servfail, mut lost, mut thinned) = (0u64, 0, 0, 0, 0);
    for &enb in &enbs {
        let b = net.behavior::<Enb>(enb);
        samples.merge(&b.samples);
        queries += b.queries;
        answered += b.answered;
        servfail += b.servfail;
        lost += b.lost;
        thinned += b.thinned;
    }
    // Cross-validate before reporting: every query must be accounted for
    // (the topology has no loss, so silence would be a simulator bug),
    // and the resolver must have seen exactly the queries the eNBs sent.
    assert_eq!(
        answered + servfail + lost,
        queries,
        "city: unaccounted queries"
    );
    let server = net.behavior::<DnsServer>(resolver);
    assert_eq!(server.queries_received, queries, "resolver missed queries");
    let cache = server
        .plugin::<CachePlugin>(0)
        .expect("cache plugin at index 0");
    let (hits, misses) = (cache.hits(), cache.misses());
    assert_eq!(hits + misses, queries, "cache consulted once per query");

    let sched = net.sched_stats();
    let p = |q: f64| samples.percentile(q).unwrap_or(0.0);
    CityDeployment {
        name: if mec { "mec-ldns" } else { "cloud-resolver" }.to_string(),
        queries,
        answered,
        servfail,
        lost,
        thinned,
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_ratio: if queries == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        p50_ms: p(50.0),
        p99_ms: p(99.0),
        max_ms: p(100.0),
        sim_events: sched.executed,
        max_pending_events: sched.max_pending,
        wheel_cascades: sched.cascades,
    }
}

/// Runs the city campaign serially. See [`city_experiment_with`].
pub fn city_experiment(seed: u64, cfg: &CityConfig) -> CityReport {
    city_experiment_with(seed, &Runner::default(), cfg)
}

/// Runs the two deployments as independent trials on `runner` (derived
/// seeds, index-ordered merge — byte-identical at any thread count) and
/// assembles the [`CityReport`].
pub fn city_experiment_with(seed: u64, runner: &Runner, cfg: &CityConfig) -> CityReport {
    let deployments = runner.run_seeded(2, seed, |idx, trial_seed| {
        run_deployment(idx == 0, trial_seed, cfg)
    });
    CityReport {
        seed,
        ues: cfg.ues,
        enbs: cfg.enbs,
        catalog: cfg.catalog,
        alpha: cfg.alpha,
        peak_interarrival_ms: cfg.peak_interarrival.as_millis_f64(),
        window_ms: cfg.window.as_millis_f64(),
        cache_entries: cfg.cache_entries as u64,
        deployments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CityConfig {
        CityConfig {
            ues: 400,
            enbs: 4,
            catalog: 200,
            alpha: 1.0,
            peak_interarrival: SimDuration::from_millis(800),
            window: SimDuration::from_secs(4),
            cache_entries: 256,
        }
    }

    #[test]
    fn tiny_city_resolves_everything() {
        let r = city_experiment(2020, &tiny());
        assert_eq!(r.deployments.len(), 2);
        for d in &r.deployments {
            assert!(d.queries > 100, "{}: only {} queries", d.name, d.queries);
            assert_eq!(d.answered, d.queries, "{}: unanswered queries", d.name);
            assert_eq!(d.servfail, 0);
            assert_eq!(d.lost, 0);
            assert!(d.cache_hit_ratio > 0.0 && d.cache_hit_ratio < 1.0);
            assert!(d.p99_ms > d.p50_ms);
            assert!(d.sim_events > d.queries);
            // Every UE holds a pending timer at once at some point.
            assert!(d.max_pending_events >= 400);
        }
    }

    #[test]
    fn mec_beats_cloud_on_latency() {
        let r = city_experiment(2020, &tiny());
        let mec = &r.deployments[0];
        let cloud = &r.deployments[1];
        assert_eq!(mec.name, "mec-ldns");
        assert_eq!(cloud.name, "cloud-resolver");
        assert!(
            mec.p50_ms < cloud.p50_ms,
            "MEC p50 {} !< cloud p50 {}",
            mec.p50_ms,
            cloud.p50_ms
        );
        assert!(mec.p99_ms < cloud.p99_ms);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let serial = city_experiment_with(77, &Runner::new(1), &tiny());
        let parallel = city_experiment_with(77, &Runner::new(4), &tiny());
        assert_eq!(serial, parallel);
        let a = serde_json::to_string_pretty(&serial).unwrap();
        let b = serde_json::to_string_pretty(&parallel).unwrap();
        assert_eq!(a, b);
    }
}
