//! Serializable telemetry artifacts harvested from a run [`Deployment`].
//!
//! `netsim::Telemetry` is the in-simulator recording side: counters,
//! histograms and per-query breadcrumb traces shared by every component
//! on the query path. This module is the reporting side — it freezes one
//! deployment trial's telemetry into plain serde structs (milliseconds,
//! `String` names) that the `repro` binary prints as JSON and the bench
//! suite snapshots as a baseline.
//!
//! Determinism matters here: the harvest walks `BTreeMap`-ordered
//! counters/histograms and index-ordered measured queries, and every
//! value is derived from virtual time, so the serialized report is
//! byte-identical for a given seed at any `--threads` count.

use crate::deployments::Deployment;
use crate::measurement::{split_from_traces, split_wireless, MeasuredQuery};
use serde::{Deserialize, Serialize};

/// One counter at harvest time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name (`"dns.cache.hit"`, `"stub.retry"`, …).
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// One histogram summarized at harvest time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name (`"stub.rtt"`, `"pgw.behind_gw"`, …).
    pub name: String,
    /// Number of observations.
    pub count: usize,
    /// Mean observation, ms.
    pub mean_ms: f64,
    /// Smallest observation, ms.
    pub min_ms: f64,
    /// Largest observation, ms.
    pub max_ms: f64,
}

/// One breadcrumb of the exemplar trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceCrumb {
    /// Virtual time of the event, ms since simulation start.
    pub at_ms: f64,
    /// Path point (`"stub.issue"`, `"cache.hit"`, `"pgw.uplink"`, …).
    pub point: String,
    /// Free-form context recorded with the crumb.
    pub detail: String,
}

/// One full resolution trace, kept as a worked example per trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarTrace {
    /// DNS transaction id the crumbs were recorded under.
    pub id: u64,
    /// Every breadcrumb, in recording order.
    pub crumbs: Vec<TraceCrumb>,
}

/// Per-query cross-check: the wireless component derived from the
/// breadcrumb trace versus the one derived from the P-GW packet tap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySummary {
    /// DNS transaction id (stub ids start at 1, in issue order).
    pub id: u64,
    /// Issue time, ms since simulation start.
    pub started_ms: f64,
    /// Answer time, ms since simulation start.
    pub finished_ms: f64,
    /// Total lookup time, ms.
    pub total_ms: f64,
    /// Wireless component from the breadcrumb trace, ms.
    pub trace_wireless_ms: f64,
    /// Resolver component from the breadcrumb trace, ms.
    pub trace_resolver_ms: f64,
    /// Wireless component from the packet tap, ms.
    pub tap_wireless_ms: f64,
    /// `|trace_wireless_ms - tap_wireless_ms|` — the two observation
    /// paths must agree (the end-to-end tests bound this at 1 ms).
    pub split_delta_ms: f64,
}

/// Everything harvested from one deployment trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialTelemetry {
    /// Figure 5 bar label of the deployment.
    pub deployment: String,
    /// Seed the trial's world ran on.
    pub seed: u64,
    /// All counters, in name order.
    pub counters: Vec<CounterSample>,
    /// All histograms, in name order.
    pub histograms: Vec<HistogramSample>,
    /// Per-query trace-vs-tap cross-check, in issue order.
    pub queries: Vec<QuerySummary>,
    /// The first query's full breadcrumb trail, as a readable example.
    pub exemplar_trace: Option<ExemplarTrace>,
    /// Worst trace-vs-tap disagreement across [`Self::queries`], ms.
    pub max_split_delta_ms: f64,
}

/// The telemetry artifact of one Figure 5 campaign: one
/// [`TrialTelemetry`] per deployment, in Figure 5 order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Root seed the campaign derived per-trial seeds from.
    pub seed: u64,
    /// One entry per deployment bar.
    pub trials: Vec<TrialTelemetry>,
}

impl TrialTelemetry {
    /// Freezes the telemetry of a deployment that already ran
    /// [`Deployment::run_measure`] (the harvest needs `last_tap` and the
    /// measured queries it returned).
    pub fn harvest(d: &Deployment, seed: u64, measured: &[MeasuredQuery]) -> TrialTelemetry {
        let counters = d.telemetry.with_metrics(|m| {
            m.counters()
                .map(|(name, value)| CounterSample {
                    name: name.to_string(),
                    value,
                })
                .collect()
        });
        let histograms = d.telemetry.with_metrics(|m| {
            m.histograms()
                .map(|(name, values)| {
                    let ms: Vec<f64> = values.iter().map(|v| v.as_millis_f64()).collect();
                    HistogramSample {
                        name: name.to_string(),
                        count: ms.len(),
                        mean_ms: ms.iter().sum::<f64>() / ms.len().max(1) as f64,
                        min_ms: ms.iter().copied().fold(f64::INFINITY, f64::min),
                        max_ms: ms.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    }
                })
                .collect()
        });

        // Pair the two split derivations query by query: a one-element
        // slice yields zero or one split, so a query either produces a
        // matched (trace, tap) pair or is skipped on both sides.
        let mut queries = Vec::new();
        let mut exemplar_trace = None;
        let mut max_split_delta_ms = 0.0f64;
        for m in measured {
            let slice = std::slice::from_ref(m);
            let trace_split = split_from_traces(&d.telemetry, slice);
            let tap_split = split_wireless(&d.last_tap, slice);
            let (Some(ts), Some(ps)) = (trace_split.first(), tap_split.first()) else {
                continue;
            };
            // The stub allocates transaction ids 1, 2, … in issue order.
            let id = m.outcome.tag + 1;
            let delta = (ts.wireless.as_millis_f64() - ps.wireless.as_millis_f64()).abs();
            max_split_delta_ms = max_split_delta_ms.max(delta);
            queries.push(QuerySummary {
                id,
                started_ms: m.started.as_millis_f64(),
                finished_ms: m.finished.as_millis_f64(),
                total_ms: ts.total.as_millis_f64(),
                trace_wireless_ms: ts.wireless.as_millis_f64(),
                trace_resolver_ms: ts.resolver.as_millis_f64(),
                tap_wireless_ms: ps.wireless.as_millis_f64(),
                split_delta_ms: delta,
            });
            if exemplar_trace.is_none() {
                exemplar_trace = d.telemetry.trace(id).map(|t| ExemplarTrace {
                    id: t.id,
                    crumbs: t
                        .crumbs
                        .iter()
                        .map(|c| TraceCrumb {
                            at_ms: c.at.as_millis_f64(),
                            point: c.point.to_string(),
                            detail: c.detail.clone(),
                        })
                        .collect(),
                });
            }
        }

        TrialTelemetry {
            deployment: d.kind.label().to_string(),
            seed,
            counters,
            histograms,
            queries,
            exemplar_trace,
            max_split_delta_ms,
        }
    }

    /// Value of a harvested counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }
}

impl TelemetryReport {
    /// Human-readable digest: one line per trial with the headline
    /// counters and the worst trace-vs-tap delta.
    pub fn render(&self) -> String {
        let mut out = String::from("== telemetry — query-path counters and trace cross-check ==\n");
        for t in &self.trials {
            out.push_str(&format!(
                "{:<24} queries={:<3} cache hit/miss={}/{} upstream={} traced={} max_delta={:.3}ms\n",
                t.deployment,
                t.counter("stub.query"),
                t.counter("dns.cache.hit"),
                t.counter("dns.cache.miss"),
                t.counter("dns.upstream.query"),
                t.queries.len(),
                t.max_split_delta_ms,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployments::{DeploymentKind, TestbedConfig};

    #[test]
    fn harvest_pairs_every_answered_query_and_agrees_with_the_tap() {
        let cfg = TestbedConfig {
            queries: 6,
            ..TestbedConfig::default()
        };
        let mut d = Deployment::build(DeploymentKind::MecLdnsMecCdns, &cfg);
        let (measured, split) = d.run_measure();
        let trial = TrialTelemetry::harvest(&d, cfg.seed, &measured);
        assert_eq!(trial.queries.len(), split.len(), "one summary per split");
        assert!(trial.counter("stub.query") >= 6);
        // The MEC L-DNS redirects the CDN zone to the collocated C-DNS,
        // which answers every query.
        assert!(trial.counter("dns.stub_domain.redirect") > 0, "no redirects seen");
        assert!(trial.counter("cdns.answered") > 0, "C-DNS answered nothing");
        assert!(
            trial.max_split_delta_ms <= 1.0,
            "trace and tap disagree by {}ms",
            trial.max_split_delta_ms
        );
        let ex = trial.exemplar_trace.expect("first query leaves a trace");
        let points: Vec<&str> = ex.crumbs.iter().map(|c| c.point.as_str()).collect();
        assert!(points.contains(&"stub.issue"), "missing stub.issue: {points:?}");
        assert!(points.contains(&"pgw.uplink"), "missing pgw.uplink: {points:?}");
        assert!(points.contains(&"pgw.downlink"), "missing pgw.downlink: {points:?}");
        assert!(points.contains(&"stub.answer"), "missing stub.answer: {points:?}");
    }

    #[test]
    fn report_serializes_deterministically() {
        let cfg = TestbedConfig {
            queries: 3,
            ..TestbedConfig::default()
        };
        let build = || {
            let mut d = Deployment::build(DeploymentKind::MecLdnsLanCdns, &cfg);
            let (measured, _) = d.run_measure();
            let report = TelemetryReport {
                seed: cfg.seed,
                trials: vec![TrialTelemetry::harvest(&d, cfg.seed, &measured)],
            };
            serde_json::to_string_pretty(&report).unwrap()
        };
        assert_eq!(build(), build(), "same seed must serialize identically");
    }
}
