//! `fuzz_wire` — the long-running campaign driver.
//!
//! ```text
//! fuzz_wire [--cases N] [--seed 0xHEX] [--threads T]
//!           [--summary PATH] [--crashers DIR] [--write-seeds]
//! ```
//!
//! Runs a deterministic fuzz campaign against `dns-wire` and prints
//! (or writes) the byte-stable summary report. Exits non-zero when any
//! crasher is found — the CI fail-on-crasher gate. With `--crashers`
//! each retained crasher is minimized and written as
//! `case-<idx>-<class>.bin` for pinning as a regression fixture.
//! `--write-seeds` regenerates `corpus/seeds/*.bin` from the builders
//! in `dns_fuzz::corpus` and exits.

use dns_fuzz::{minimize, oracle, runner, Config};
use std::path::Path;
use std::process::ExitCode;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse().ok()
    }
}

fn main() -> ExitCode {
    // detlint: allow(env-read) — CLI of a test harness, outside any
    // simulation; the campaign itself is seeded explicitly.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };

    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: fuzz_wire [--cases N] [--seed 0xHEX] [--threads T] \
             [--summary PATH] [--crashers DIR] [--write-seeds]"
        );
        return ExitCode::SUCCESS;
    }

    if args.iter().any(|a| a == "--write-seeds") {
        // Works from the workspace root or from the crate directory.
        let dir = if Path::new("crates/dns-fuzz/corpus/seeds").is_dir() {
            "crates/dns-fuzz/corpus/seeds"
        } else {
            "corpus/seeds"
        };
        let seeds = dns_fuzz::corpus::build_seeds();
        for (i, s) in seeds.iter().enumerate() {
            let path = format!("{dir}/seed-{i:02}.bin");
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("fuzz_wire: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("wrote {} seeds to {dir}", seeds.len());
        return ExitCode::SUCCESS;
    }

    let mut cfg = Config::default();
    if let Some(v) = value_of("--cases") {
        match parse_u64(v) {
            Some(n) => cfg.cases = n,
            None => {
                eprintln!("fuzz_wire: bad --cases {v}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(v) = value_of("--seed") {
        match parse_u64(v) {
            Some(n) => cfg.root_seed = n,
            None => {
                eprintln!("fuzz_wire: bad --seed {v}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(v) = value_of("--threads") {
        match v.parse() {
            Ok(n) => cfg.threads = n,
            Err(_) => {
                eprintln!("fuzz_wire: bad --threads {v}");
                return ExitCode::FAILURE;
            }
        }
    }

    let summary = runner::run(&cfg);
    let rendered = summary.render();
    match value_of("--summary") {
        Some(path) if path != "-" => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("fuzz_wire: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        _ => print!("{rendered}"),
    }

    if summary.crash_count() == 0 {
        return ExitCode::SUCCESS;
    }

    // Crashers found: minimize and (optionally) emit fixtures.
    if let Some(dir) = value_of("--crashers") {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fuzz_wire: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for c in &summary.crashers {
            let class = c.outcome.class();
            let small = minimize::minimize(
                &c.input,
                |bytes| oracle::check(bytes, true).class() == class,
                4096,
            );
            let path = format!("{dir}/case-{:08}-{class}.bin", c.case_idx);
            if let Err(e) = std::fs::write(&path, &small) {
                eprintln!("fuzz_wire: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "crasher case {} [{}]: {} -> {} bytes -> {path}",
                c.case_idx,
                class,
                c.input.len(),
                small.len()
            );
        }
    }
    eprintln!("fuzz_wire: {} crashing case(s) found", summary.crash_count());
    ExitCode::FAILURE
}
