//! The raw byte-mutation engine: structure-blind corruption of real
//! encoded messages. Finds what the grammar engine's preconceptions
//! miss.

use crate::rng::FuzzRng;

/// Inputs larger than this are truncated before reaching the decoder.
/// Real first-hop DNS is UDP-sized; the cap also bounds per-case work
/// so campaign throughput stays predictable.
pub const MAX_INPUT_LEN: usize = 4096;

/// Produces one mutated input from the seed corpus. Applies 1–8
/// stacked mutations chosen by `rng`: bit flips, byte stomps,
/// truncation, cross-seed splicing, chunk duplication and chunk fills.
pub fn mutate(rng: &mut FuzzRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = corpus[rng.below(corpus.len())].clone();
    let ops = 1 + rng.below(8);
    for _ in 0..ops {
        match rng.below(6) {
            0 => bit_flip(rng, &mut buf),
            1 => byte_stomp(rng, &mut buf),
            2 => truncate(rng, &mut buf),
            3 => splice(rng, &mut buf, corpus),
            4 => duplicate_chunk(rng, &mut buf),
            _ => fill_chunk(rng, &mut buf),
        }
    }
    buf.truncate(MAX_INPUT_LEN);
    buf
}

fn bit_flip(rng: &mut FuzzRng, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let bit = rng.below(buf.len() * 8);
    if let Some(b) = buf.get_mut(bit / 8) {
        *b ^= 1 << (bit % 8);
    }
}

fn byte_stomp(rng: &mut FuzzRng, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let at = rng.below(buf.len());
    // Interesting values first: label-type tags, length extremes.
    let v = match rng.below(8) {
        0 => 0x00,
        1 => 0xFF,
        2 => 0xC0,
        3 => 0x3F,
        4 => 0x40,
        _ => rng.byte(),
    };
    if let Some(b) = buf.get_mut(at) {
        *b = v;
    }
}

fn truncate(rng: &mut FuzzRng, buf: &mut Vec<u8>) {
    let keep = rng.below(buf.len() + 1);
    buf.truncate(keep);
}

fn splice(rng: &mut FuzzRng, buf: &mut Vec<u8>, corpus: &[Vec<u8>]) {
    let other = &corpus[rng.below(corpus.len())];
    if other.is_empty() {
        return;
    }
    let cut = rng.below(buf.len() + 1);
    let from = rng.below(other.len());
    buf.truncate(cut);
    buf.extend_from_slice(&other[from..]);
}

fn duplicate_chunk(rng: &mut FuzzRng, buf: &mut Vec<u8>) {
    if buf.is_empty() {
        return;
    }
    let start = rng.below(buf.len());
    let len = 1 + rng.below((buf.len() - start).min(32));
    let chunk: Vec<u8> = buf[start..start + len].to_vec();
    let at = rng.below(buf.len() + 1);
    // splice-in; cap growth so stacked duplications cannot balloon.
    if buf.len() + chunk.len() <= MAX_INPUT_LEN {
        buf.splice(at..at, chunk);
    }
}

fn fill_chunk(rng: &mut FuzzRng, buf: &mut [u8]) {
    if buf.is_empty() {
        return;
    }
    let start = rng.below(buf.len());
    let len = 1 + rng.below((buf.len() - start).min(16));
    let v = if rng.chance(50) { 0x00 } else { 0xFF };
    for b in &mut buf[start..start + len] {
        *b = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Vec<Vec<u8>> {
        vec![vec![1, 2, 3, 4, 5, 6, 7, 8], vec![9, 10], Vec::new()]
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let corpus = tiny_corpus();
        let a = mutate(&mut FuzzRng::new(77), &corpus);
        let b = mutate(&mut FuzzRng::new(77), &corpus);
        assert_eq!(a, b);
        let c = mutate(&mut FuzzRng::new(78), &corpus);
        // Overwhelmingly likely to differ; equality would suggest the
        // rng seed is being ignored.
        assert_ne!((a, 77u64), (c, 78u64));
    }

    #[test]
    fn output_respects_length_cap() {
        let corpus = vec![vec![0xAB; MAX_INPUT_LEN]];
        for seed in 0..200 {
            let out = mutate(&mut FuzzRng::new(seed), &corpus);
            assert!(out.len() <= MAX_INPUT_LEN);
        }
    }

    #[test]
    fn empty_seed_never_panics_the_engine() {
        let corpus = vec![Vec::new()];
        for seed in 0..200 {
            let _ = mutate(&mut FuzzRng::new(seed), &corpus);
        }
    }
}
