//! The grammar-aware mutation engine: wire-format-literate attacks.
//!
//! Each attack targets a specific decoder obligation: counted sections
//! must not trust their counts, compression pointers must terminate,
//! OPT option lengths must stay inside the rdata, ECS address lengths
//! must agree with the source prefix, labels must respect the 63-octet
//! ceiling, and truncation can land mid-record.

use crate::mutate::MAX_INPUT_LEN;
use crate::rng::FuzzRng;

/// Produces one structured hostile input.
pub fn mutate(rng: &mut FuzzRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut out = match rng.below(9) {
        0 => mangle_counts(rng, corpus),
        1 => inject_pointer(rng, corpus),
        2 => pointer_chain(rng),
        3 => corrupt_opt_len(rng),
        4 => ecs_mismatch(rng),
        5 => label_edge(rng),
        6 => truncate_mid_rr(rng, corpus),
        7 => oversized_response(rng),
        _ => txt_length_lies(rng),
    };
    out.truncate(MAX_INPUT_LEN);
    out
}

/// A 12-byte header with explicit section counts and zero flags.
fn header(id: u16, qd: u16, an: u16, ns: u16, ar: u16) -> Vec<u8> {
    let mut h = Vec::with_capacity(12);
    h.extend_from_slice(&id.to_be_bytes());
    h.extend_from_slice(&[0, 0]);
    for c in [qd, an, ns, ar] {
        h.extend_from_slice(&c.to_be_bytes());
    }
    h
}

fn pick_seed(rng: &mut FuzzRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    corpus[rng.below(corpus.len())].clone()
}

/// Overwrites one of the four section counts with an extreme value the
/// body cannot satisfy.
fn mangle_counts(rng: &mut FuzzRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = pick_seed(rng, corpus);
    if buf.len() < 12 {
        return buf;
    }
    let field = 4 + 2 * rng.below(4);
    let v: u16 = [0x0001, 0x00FF, 0x7FFF, 0xFFFF][rng.below(4)];
    let be = v.to_be_bytes();
    buf[field] = be[0];
    buf[field + 1] = be[1];
    buf
}

/// Stamps a compression pointer somewhere in the body: self-pointing,
/// forward, past the end, or backward into arbitrary bytes.
fn inject_pointer(rng: &mut FuzzRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = pick_seed(rng, corpus);
    if buf.len() < 14 {
        return buf;
    }
    let at = 12 + rng.below(buf.len() - 13);
    let target = match rng.below(4) {
        0 => at,                            // self loop
        1 => at + 1 + rng.below(64),        // forward
        2 => buf.len() + rng.below(0x2000), // past the end
        _ => rng.below(at.max(1)),          // backward, arbitrary bytes
    } & 0x3FFF;
    buf[at] = 0xC0 | (target >> 8) as u8;
    buf[at + 1] = target as u8;
    buf
}

/// A two-question message whose second qname is a strictly-backward
/// pointer chain — every hop legal in isolation — deep enough to
/// overrun the decode step budget for about half the draws.
///
/// The chain hides inside the *label content* of the first question's
/// qname: the decoder reads those bytes as opaque label payload, then
/// the second qname points at the chain's tail and each pointer hops
/// strictly backward to the previous one, terminating on the 0x00 at
/// offset 4 (the qdcount high byte, which reads as a root label).
fn pointer_chain(rng: &mut FuzzRng) -> Vec<u8> {
    let total_ptrs = 1 + rng.below(62);
    let mut buf = header(rng.u16(), 2, 0, 0, 0);
    let mut prev_target = 4usize;
    let mut remaining = total_ptrs;
    while remaining > 0 {
        let in_label = remaining.min(31);
        buf.push((in_label * 2) as u8); // literal label holding pointers
        for _ in 0..in_label {
            let pos = buf.len();
            buf.push(0xC0 | (prev_target >> 8) as u8);
            buf.push(prev_target as u8);
            prev_target = pos;
        }
        remaining -= in_label;
    }
    buf.push(0x00); // end of question 1's name
    buf.extend_from_slice(&[0, 1, 0, 1]);
    // Question 2: qname = pointer to the chain tail.
    buf.push(0xC0 | (prev_target >> 8) as u8);
    buf.push(prev_target as u8);
    buf.extend_from_slice(&[0, 1, 0, 1]);
    buf
}

/// An OPT pseudo-record whose option length disagrees with its rdata.
fn corrupt_opt_len(rng: &mut FuzzRng) -> Vec<u8> {
    let mut buf = header(rng.u16(), 1, 0, 0, 1);
    // question: root A IN
    buf.extend_from_slice(&[0x00, 0, 1, 0, 1]);
    // OPT record: root name, type 41, class = payload size, ttl 0.
    buf.push(0x00);
    buf.extend_from_slice(&41u16.to_be_bytes());
    buf.extend_from_slice(&1232u16.to_be_bytes());
    buf.extend_from_slice(&0u32.to_be_bytes());
    // rdata: one option, code 8, length field lying about the body.
    let body_len = rng.below(8);
    let claimed = match rng.below(3) {
        0 => body_len + 1 + rng.below(64), // overflows rdata
        1 => 0xFFFF,                       // absurd
        _ => body_len.saturating_sub(1),   // undershoots, leaves trailing
    } as u16;
    let rdlen = 4 + body_len as u16;
    buf.extend_from_slice(&rdlen.to_be_bytes());
    buf.extend_from_slice(&8u16.to_be_bytes());
    buf.extend_from_slice(&claimed.to_be_bytes());
    for _ in 0..body_len {
        buf.push(rng.byte());
    }
    buf
}

/// An ECS option whose family/prefix/address-length relations are wrong.
fn ecs_mismatch(rng: &mut FuzzRng) -> Vec<u8> {
    let mut buf = header(rng.u16(), 1, 0, 0, 1);
    buf.extend_from_slice(&[0x00, 0, 1, 0, 1]);
    buf.push(0x00);
    buf.extend_from_slice(&41u16.to_be_bytes());
    buf.extend_from_slice(&1232u16.to_be_bytes());
    buf.extend_from_slice(&0u32.to_be_bytes());
    let family: u16 = [0, 1, 2, 3, 0x8000][rng.below(5)];
    let source_prefix = rng.byte();
    let scope_prefix = if rng.chance(80) { 0 } else { rng.byte() };
    let addr_len = rng.below(18);
    let body_len = (4 + addr_len) as u16;
    buf.extend_from_slice(&(4 + body_len).to_be_bytes()); // rdlen
    buf.extend_from_slice(&8u16.to_be_bytes());
    buf.extend_from_slice(&body_len.to_be_bytes());
    buf.extend_from_slice(&family.to_be_bytes());
    buf.push(source_prefix);
    buf.push(scope_prefix);
    for _ in 0..addr_len {
        // Dirty bytes on purpose: padding-bit validation must fire.
        buf.push(if rng.chance(50) { 0xFF } else { rng.byte() });
    }
    buf
}

/// Names hugging the label (63/64) and name (255/256) limits.
fn label_edge(rng: &mut FuzzRng) -> Vec<u8> {
    let mut buf = header(rng.u16(), 1, 0, 0, 0);
    match rng.below(4) {
        0 => {
            // single max-length label: valid.
            buf.push(63);
            for _ in 0..63 {
                buf.push(b'a' + rng.below(26) as u8);
            }
            buf.push(0);
        }
        1 => {
            // label length 64: reserved 0b01 type bits.
            buf.push(64);
            buf.extend_from_slice(&[b'b'; 64]);
            buf.push(0);
        }
        2 => {
            // four 63-octet labels: 257 encoded octets, over the cap.
            for _ in 0..4 {
                buf.push(63);
                buf.extend_from_slice(&[b'c'; 63]);
            }
            buf.push(0);
        }
        _ => {
            // 0b10 reserved label type.
            buf.push(0x80 | (rng.byte() & 0x3F));
            buf.push(rng.byte());
            buf.push(0);
        }
    }
    buf.extend_from_slice(&[0, 1, 0, 1]);
    buf
}

/// Cuts a well-formed message inside its record area.
fn truncate_mid_rr(rng: &mut FuzzRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = pick_seed(rng, corpus);
    if buf.len() > 13 {
        let cut = 13 + rng.below(buf.len() - 13);
        buf.truncate(cut);
    }
    buf
}

/// A perfectly *valid* response whose answer section grows past a UDP
/// payload bound: not a decoder attack but an encoder one. Real packets
/// exposed exactly this class of bug — `encode` silently wrapping
/// section counts, `encode_bounded` having to drop whole trailing
/// records and raise TC. The differential oracle decodes these clean;
/// the dedicated test below pushes them back through the bounded
/// encoder.
fn oversized_response(rng: &mut FuzzRng) -> Vec<u8> {
    // 15 bytes per answer: 20 answers fits the classic 512, 120 blows
    // past 1232 too.
    let answers = 20 + rng.below(101);
    let mut buf = header(rng.u16(), 1, answers as u16, 0, 0);
    buf[2] = 0x80; // QR: this is a response
    buf.extend_from_slice(&[0x00, 0, 1, 0, 1]); // question: root A IN
    for i in 0..answers {
        buf.push(0x00); // owner: root
        buf.extend_from_slice(&1u16.to_be_bytes()); // A
        buf.extend_from_slice(&1u16.to_be_bytes()); // IN
        buf.extend_from_slice(&60u32.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[10, 0, (i >> 8) as u8, i as u8]);
    }
    buf
}

/// A TXT record whose character-string lengths overrun the rdata.
fn txt_length_lies(rng: &mut FuzzRng) -> Vec<u8> {
    let mut buf = header(rng.u16(), 1, 1, 0, 0);
    buf.extend_from_slice(&[0x00, 0, 16, 0, 1]); // question: root TXT IN
    buf.push(0x00); // answer name: root
    buf.extend_from_slice(&16u16.to_be_bytes());
    buf.extend_from_slice(&1u16.to_be_bytes());
    buf.extend_from_slice(&60u32.to_be_bytes());
    let actual = rng.below(8);
    let rdlen = (1 + actual) as u16;
    buf.extend_from_slice(&rdlen.to_be_bytes());
    // The char-string claims more bytes than the rdata holds.
    buf.push((actual + 1 + rng.below(250)) as u8);
    for _ in 0..actual {
        buf.push(rng.byte());
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::Message;

    fn corpus() -> Vec<Vec<u8>> {
        crate::corpus::build_seeds()
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let c = corpus();
        for seed in 0..64 {
            let a = mutate(&mut FuzzRng::new(seed), &c);
            let b = mutate(&mut FuzzRng::new(seed), &c);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn attacks_never_panic_the_decoder() {
        let c = corpus();
        for seed in 0..2000 {
            let input = mutate(&mut FuzzRng::new(seed), &c);
            let _ = Message::decode(&input);
        }
    }

    #[test]
    fn oversized_responses_truncate_cleanly_under_a_payload_bound() {
        use dns_wire::CLASSIC_UDP_PAYLOAD;
        // The attack emits valid responses; every draw that overflows
        // the classic 512-byte budget must come back from the bounded
        // encoder within budget, decodable, TC set, with an intact
        // prefix of the answers.
        let mut overflowed = 0;
        for seed in 0..64 {
            let input = oversized_response(&mut FuzzRng::new(seed));
            let m = Message::decode(&input).expect("attack must build a valid response");
            let full = m.encode().expect("valid response re-encodes");
            if full.len() <= CLASSIC_UDP_PAYLOAD {
                continue;
            }
            overflowed += 1;
            let bounded = m
                .encode_bounded(CLASSIC_UDP_PAYLOAD)
                .expect("bounded encode never fails on a fitting question");
            assert!(bounded.len() <= CLASSIC_UDP_PAYLOAD);
            let back = Message::decode(&bounded).expect("truncated response must decode");
            assert!(back.header.truncated, "TC must be set after dropping records");
            assert!(back.answers.len() < m.answers.len());
            assert_eq!(&m.answers[..back.answers.len()], &back.answers[..]);
        }
        assert!(overflowed > 0, "no draw overflowed the bound in 64 seeds");
    }

    #[test]
    fn pointer_chain_attack_hits_the_budget_error() {
        use dns_wire::WireError;
        // Deep chains must be refused with the typed budget error, not
        // looped on. Hop counts below the budget decode fine (the chain
        // resolves to the root name).
        let mut found_budget_err = false;
        for seed in 0..64 {
            let input = pointer_chain(&mut FuzzRng::new(seed));
            match Message::decode(&input) {
                Err(WireError::PointerChainTooDeep { .. }) => found_budget_err = true,
                Err(e) => panic!("unexpected error {e}"),
                Ok(_) => {}
            }
        }
        assert!(found_budget_err, "no chain exceeded the budget in 64 draws");
    }
}
