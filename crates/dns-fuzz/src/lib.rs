#![warn(missing_docs)]

//! `dns-fuzz` — deterministic structured fuzzing for [`dns_wire`].
//!
//! The paper puts the L-DNS/C-DNS pair on the first-hop resolution path
//! of every UE, so the hand-rolled `dns-wire` decoder will face
//! arbitrary hostile bytes from real sockets — not just our own
//! encoder's output. This crate hammers the decoder with two mutation
//! engines and judges every input with a differential oracle:
//!
//! * **raw** ([`mutate`]): bit flips, byte stomps, truncation, splicing
//!   and chunk surgery over a committed [`corpus`] of real encoded
//!   messages;
//! * **grammar** ([`grammar`]): wire-format-aware attacks — lying
//!   header counts, injected compression pointers (loops, forward
//!   pointers, past-the-end targets), corrupted OPT option lengths, ECS
//!   family/prefix mismatches, 63/64-octet label edges, truncation in
//!   the middle of a resource record;
//! * **oracle** ([`oracle`]): every input must either decode or fail
//!   with a typed [`dns_wire::WireError`] — never a panic. Every
//!   successful decode must re-encode, re-decode to a structurally
//!   identical message, re-encode byte-identically, and keep `Name`
//!   id-space equality in agreement with string-space equality.
//!
//! Determinism is the contract that makes failures actionable: case
//! `i` of a campaign depends only on `(root_seed, i)` via the same
//! splitmix64 seed-derivation scheme the experiment runner uses
//! ([`rng::derive_seed`]), and the campaign [`runner`] merges results
//! so the [`report::Summary`] is byte-identical for any `--threads`
//! value. A crasher reported by CI reproduces locally from its case
//! index alone.
//!
//! Two entry points ship: a quick fixed-seed corpus run wired into
//! `cargo test` (see `tests/fuzz_smoke.rs`), and the `fuzz_wire` bin
//! for long campaigns, which minimizes crashers ([`minimize`]) and
//! writes them under `corpus/crashers/` to be pinned as regression
//! fixtures.

pub mod corpus;
pub mod grammar;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod report;
pub mod rng;
pub mod runner;

pub use oracle::Outcome;
pub use report::Summary;
pub use rng::{derive_seed, FuzzRng};
pub use runner::{run, Config};
