//! Greedy deterministic crasher minimization.
//!
//! Before a crasher is written out as a fixture it is shrunk: smaller
//! inputs make better regression tests and better bug reports. The
//! strategy is ddmin-flavored — try removing exponentially smaller
//! chunks, then canonicalize surviving bytes toward zero — with a hard
//! attempt budget so minimization can never stall a campaign.

/// Shrinks `input` while `still_fails` holds, spending at most `budget`
/// predicate evaluations. Returns the smallest failing input found.
pub fn minimize<F: Fn(&[u8]) -> bool>(input: &[u8], still_fails: F, mut budget: usize) -> Vec<u8> {
    let mut best = input.to_vec();
    if !still_fails(&best) {
        // Not reproducible under the predicate — nothing to do.
        return best;
    }

    // Phase 1: chunk removal, halving the chunk size each round.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut offset = 0;
        let mut removed_any = false;
        while offset < best.len() && budget > 0 {
            let end = (offset + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len());
            candidate.extend_from_slice(&best[..offset]);
            candidate.extend_from_slice(&best[end..]);
            budget -= 1;
            if !candidate.is_empty() && still_fails(&candidate) {
                best = candidate;
                removed_any = true;
                // Same offset now names the next chunk; don't advance.
            } else {
                offset += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk = if chunk == 1 { 0 } else { chunk / 2 };
    }

    // Phase 2: canonicalize — zero out bytes that don't matter.
    let mut i = 0;
    while i < best.len() && budget > 0 {
        if best[i] != 0 {
            let saved = best[i];
            best[i] = 0;
            budget -= 1;
            if !still_fails(&best) {
                best[i] = saved;
            }
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_core() {
        // "Fails" iff the bytes contain the pair 0xC0 0x0C.
        let fails = |b: &[u8]| b.windows(2).any(|w| w == [0xC0, 0x0C]);
        let mut input = vec![7u8; 64];
        input[40] = 0xC0;
        input[41] = 0x0C;
        let out = minimize(&input, fails, 10_000);
        assert!(fails(&out));
        assert!(out.len() <= 3, "got {} bytes", out.len());
    }

    #[test]
    fn zeroes_irrelevant_bytes() {
        let fails = |b: &[u8]| b.len() >= 4;
        let out = minimize(&[9, 9, 9, 9, 9], fails, 10_000);
        assert_eq!(out, vec![0, 0, 0, 0]);
    }

    #[test]
    fn non_reproducing_input_returned_unchanged() {
        let out = minimize(&[1, 2, 3], |_| false, 100);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn respects_budget() {
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let fails = |_: &[u8]| {
            calls.set(calls.get() + 1);
            true
        };
        let _ = minimize(&[1; 256], fails, 50);
        assert!(calls.get() <= 51, "{} calls", calls.get());
    }
}
