//! The differential decode oracle: what every fuzz input must satisfy.
//!
//! For arbitrary bytes, `Message::decode` must return `Ok` or a typed
//! [`WireError`] — never panic (the decode *step budget* lives inside
//! `dns-wire`: bounded pointer hops, incremental name-length checks and
//! count-clamped preallocation make decode work linear in input size,
//! so termination is structural, not timed). For every accepted input
//! the pipeline decode → encode → decode must be idempotent and the
//! second encode byte-stable, and `Name` id-space equality must agree
//! with structural equality.

use crate::rng::splitmix64;
use dns_wire::{Message, Name, WireError};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// How one input fared against the oracle.
///
/// Only [`Outcome::Accepted`] and [`Outcome::DecodeErr`] are healthy;
/// everything else is a crasher the campaign reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Full pipeline passed: decode, re-encode, re-decode, stability
    /// and (when sampled) id-space agreement.
    Accepted,
    /// Decode failed with the named typed `WireError` variant — the
    /// correct way to refuse hostile bytes.
    DecodeErr(&'static str),
    /// Some stage panicked; carries `"<stage>: <message>"`.
    Panicked(String),
    /// The decoded message failed to re-encode (named variant).
    ReencodeErr(&'static str),
    /// The re-encoded bytes failed to decode (named variant).
    RedecodeErr(&'static str),
    /// decode(encode(m)) ≠ m — the codec is lossy somewhere.
    NonIdempotent,
    /// Two encodes of the same message differ — unstable compression.
    EncodeUnstable,
    /// `Name` id-space equality disagreed with structural equality.
    IdSpaceMismatch,
}

impl Outcome {
    /// True for outcomes that must never occur: anything other than a
    /// clean accept or a typed decode refusal.
    pub fn is_crash(&self) -> bool {
        !matches!(self, Outcome::Accepted | Outcome::DecodeErr(_))
    }

    /// Stable short label used in reports and crasher file names.
    pub fn class(&self) -> &'static str {
        match self {
            Outcome::Accepted => "accepted",
            Outcome::DecodeErr(_) => "decode-err",
            Outcome::Panicked(_) => "panicked",
            Outcome::ReencodeErr(_) => "reencode-err",
            Outcome::RedecodeErr(_) => "redecode-err",
            Outcome::NonIdempotent => "non-idempotent",
            Outcome::EncodeUnstable => "encode-unstable",
            Outcome::IdSpaceMismatch => "id-space-mismatch",
        }
    }

    /// Deterministic hash folding the class and any variant detail —
    /// the per-case contribution to the campaign digest.
    pub fn digest(&self) -> u64 {
        let mut h = fold(0x0D15_EA5E, self.class().as_bytes());
        if let Outcome::DecodeErr(v) | Outcome::ReencodeErr(v) | Outcome::RedecodeErr(v) = self
        {
            h = fold(h, v.as_bytes());
        }
        // Panic messages are deliberately excluded: they may contain
        // addresses or line numbers that vary across builds.
        h
    }
}

fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// The name of a [`WireError`] variant, for reports and digests.
pub fn variant_name(e: &WireError) -> &'static str {
    match e {
        WireError::Truncated { .. } => "Truncated",
        WireError::LabelTooLong(_) => "LabelTooLong",
        WireError::NameTooLong(_) => "NameTooLong",
        WireError::InvalidLabelByte(_) => "InvalidLabelByte",
        WireError::EmptyName => "EmptyName",
        WireError::BadPointer { .. } => "BadPointer",
        WireError::PointerChainTooDeep { .. } => "PointerChainTooDeep",
        WireError::UnsupportedLabelType(_) => "UnsupportedLabelType",
        WireError::RdataLengthMismatch { .. } => "RdataLengthMismatch",
        WireError::CountMismatch(_) => "CountMismatch",
        WireError::BadEdnsOption => "BadEdnsOption",
        WireError::BadClientSubnet(_) => "BadClientSubnet",
        WireError::MessageTooLong(_) => "MessageTooLong",
        WireError::CharacterStringTooLong(_) => "CharacterStringTooLong",
        WireError::TooManyRecords { .. } => "TooManyRecords",
    }
}

static QUIET_PANICS: Once = Once::new();

/// Installs a panic hook that suppresses the default stderr backtrace
/// spam for panics the oracle catches. Installed once per process;
/// `catch_unwind` still receives the payload.
fn quiet_panics() {
    QUIET_PANICS.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

/// Runs one input through the full differential pipeline.
///
/// `check_id_space` additionally verifies id-space vs structural name
/// equality; campaigns sample it (interning is process-permanent, so
/// doing it on every hostile input would grow the table unboundedly).
pub fn check(input: &[u8], check_id_space: bool) -> Outcome {
    quiet_panics();
    let stage = Cell::new("decode");
    let result = catch_unwind(AssertUnwindSafe(|| run_pipeline(input, check_id_space, &stage)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Panicked(format!("{}: {}", stage.get(), msg))
        }
    }
}

fn run_pipeline(input: &[u8], check_id_space: bool, stage: &Cell<&'static str>) -> Outcome {
    let m1 = match Message::decode(input) {
        Ok(m) => m,
        Err(e) => return Outcome::DecodeErr(variant_name(&e)),
    };
    stage.set("encode");
    let b1 = match m1.encode() {
        Ok(b) => b,
        Err(e) => return Outcome::ReencodeErr(variant_name(&e)),
    };
    stage.set("redecode");
    let m2 = match Message::decode(&b1) {
        Ok(m) => m,
        Err(e) => return Outcome::RedecodeErr(variant_name(&e)),
    };
    if m2 != m1 {
        return Outcome::NonIdempotent;
    }
    stage.set("restability");
    let b2 = match m2.encode() {
        Ok(b) => b,
        Err(e) => return Outcome::ReencodeErr(variant_name(&e)),
    };
    if b2 != b1 {
        return Outcome::EncodeUnstable;
    }
    if check_id_space {
        stage.set("id-space");
        if !id_space_agrees(&m1) {
            return Outcome::IdSpaceMismatch;
        }
    }
    Outcome::Accepted
}

/// Collects up to `cap` names from a message, walking every place a
/// name can live (questions, record owners, name-bearing rdata).
fn collect_names<'m>(m: &'m Message, cap: usize) -> Vec<&'m Name> {
    let mut names: Vec<&'m Name> = Vec::new();
    let push = |n: &mut Vec<&'m Name>, name: &'m Name| {
        if n.len() < cap {
            n.push(name);
        }
    };
    for q in &m.questions {
        push(&mut names, &q.qname);
    }
    for rec in m
        .answers
        .iter()
        .chain(&m.authorities)
        .chain(&m.additionals)
    {
        push(&mut names, &rec.name);
        use dns_wire::RData::*;
        match &rec.rdata {
            Cname(n) | Ns(n) | Ptr(n) => push(&mut names, n),
            Mx { exchange, .. } => push(&mut names, exchange),
            Srv { target, .. } => push(&mut names, target),
            Soa { mname, rname, .. } => {
                push(&mut names, mname);
                push(&mut names, rname);
            }
            _ => {}
        }
    }
    names
}

/// Pairwise check that interned-id equality matches structural `Name`
/// equality for every name in the message.
fn id_space_agrees(m: &Message) -> bool {
    let names = collect_names(m, 8);
    for &a in &names {
        for &b in &names {
            if (a.id() == b.id()) != (a == b) {
                return false;
            }
            if a.id().is_subdomain_of(b.id()) != a.is_subdomain_of(b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_seeds_are_accepted_with_id_check() {
        for s in crate::corpus::build_seeds() {
            assert_eq!(check(&s, true), Outcome::Accepted);
        }
    }

    #[test]
    fn garbage_is_refused_with_typed_errors() {
        let out = check(&[0xFF; 7], false);
        assert!(matches!(out, Outcome::DecodeErr(_)), "got {out:?}");
        assert!(!out.is_crash());
    }

    #[test]
    fn panics_are_captured_not_propagated() {
        // Sanity-check the harness itself: a panicking closure through
        // the same catch path yields a Panicked outcome.
        quiet_panics();
        let stage = Cell::new("decode");
        let r = catch_unwind(AssertUnwindSafe(|| -> Outcome {
            stage.set("encode");
            panic!("boom");
        }));
        assert!(r.is_err());
        assert_eq!(stage.get(), "encode");
    }

    #[test]
    fn digest_separates_variants_but_ignores_panic_text() {
        assert_ne!(
            Outcome::DecodeErr("Truncated").digest(),
            Outcome::DecodeErr("BadPointer").digest()
        );
        assert_eq!(
            Outcome::Panicked("a".into()).digest(),
            Outcome::Panicked("b".into()).digest()
        );
        assert_ne!(Outcome::Accepted.digest(), Outcome::NonIdempotent.digest());
    }

    #[test]
    fn empty_input_is_a_clean_truncation() {
        assert_eq!(check(&[], false), Outcome::DecodeErr("Truncated"));
    }
}
