//! The campaign driver: fans cases over threads, byte-identically.
//!
//! Mirrors the experiment runner's design (`mec-cdn::runner`): every
//! case depends only on `(root_seed, case_idx)`, workers claim fixed
//! 4096-case chunks from a shared counter, and chunk results merge
//! through commutative aggregates — so `--threads 1`, `2` and `8`
//! render the same [`Summary`] byte for byte. The chunk size is a
//! constant, *not* a function of the thread count: the set of chunks
//! (and therefore which crashers each chunk retains under its cap) must
//! not depend on scheduling.

use crate::oracle::{self, Outcome};
use crate::report::Summary;
use crate::rng::{derive_seed, FuzzRng};
use crate::{grammar, mutate};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cases per work chunk. Fixed so chunk boundaries — and the per-chunk
/// crasher cap — are identical for every thread count.
const CHUNK: u64 = 4096;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Root seed; every case seed is `derive_seed(root_seed, idx)`.
    pub root_seed: u64,
    /// Number of cases to run.
    pub cases: u64,
    /// Worker threads. `0` means one per available CPU.
    pub threads: usize,
    /// Run the id-space oracle on every Nth case. Interning is
    /// process-permanent, so sampling bounds table growth; `1` checks
    /// every case, `0` disables the check entirely.
    pub id_space_every: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            root_seed: 0x0D50_00D0_E50F_F1CE, // arbitrary, stable default
            cases: 1_000_000,
            threads: 1,
            id_space_every: 64,
        }
    }
}

/// Generates the input for one case. Which engine runs is itself part
/// of the case's derived randomness: ~55% raw, ~45% grammar.
pub fn generate(rng: &mut FuzzRng, corpus: &[Vec<u8>]) -> Vec<u8> {
    if rng.chance(55) {
        mutate::mutate(rng, corpus)
    } else {
        grammar::mutate(rng, corpus)
    }
}

/// Runs one case end to end: derive seed, generate, judge.
pub fn run_case(cfg: &Config, corpus: &[Vec<u8>], idx: u64) -> (Vec<u8>, Outcome) {
    let mut rng = FuzzRng::new(derive_seed(cfg.root_seed, idx));
    let input = generate(&mut rng, corpus);
    let check_ids = cfg.id_space_every != 0 && idx.is_multiple_of(cfg.id_space_every);
    let outcome = oracle::check(&input, check_ids);
    (input, outcome)
}

fn run_chunk(cfg: &Config, corpus: &[Vec<u8>], start: u64, end: u64) -> Summary {
    let mut s = Summary::default();
    for idx in start..end {
        let (input, outcome) = run_case(cfg, corpus, idx);
        s.record(idx, outcome, &input);
    }
    s
}

/// Runs a whole campaign and returns its summary.
pub fn run(cfg: &Config) -> Summary {
    let corpus = crate::corpus::seeds();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    let chunks = cfg.cases.div_ceil(CHUNK);
    let mut total = if threads <= 1 || chunks <= 1 {
        let mut s = Summary::default();
        for c in 0..chunks {
            let start = c * CHUNK;
            let end = (start + CHUNK).min(cfg.cases);
            s.merge(run_chunk(cfg, &corpus, start, end));
        }
        s
    } else {
        let next = AtomicU64::new(0);
        let done: Mutex<Vec<Summary>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..threads.min(chunks as usize) {
                scope.spawn(|| {
                    let mut local = Summary::default();
                    loop {
                        // AcqRel for the same reason as the experiment
                        // runner's claim counter: the claim is the only
                        // synchronization between workers.
                        let c = next.fetch_add(1, Ordering::AcqRel);
                        if c >= chunks {
                            break;
                        }
                        let start = c * CHUNK;
                        let end = (start + CHUNK).min(cfg.cases);
                        local.merge(run_chunk(cfg, &corpus, start, end));
                    }
                    done.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(local);
                });
            }
        });
        let mut s = Summary::default();
        for part in done.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
            s.merge(part);
        }
        s
    };
    total.root_seed = cfg.root_seed;
    assert_eq!(total.cases, cfg.cases, "campaign lost cases");
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_are_byte_identical_across_thread_counts() {
        let base = Config {
            cases: 10_000,
            threads: 1,
            ..Config::default()
        };
        let serial = run(&base).render();
        for threads in [2, 8] {
            let cfg = Config { threads, ..base };
            assert_eq!(run(&cfg).render(), serial, "threads={threads} diverged");
        }
    }

    #[test]
    fn distinct_roots_give_distinct_digests() {
        let a = run(&Config {
            cases: 2_000,
            root_seed: 1,
            ..Config::default()
        });
        let b = run(&Config {
            cases: 2_000,
            root_seed: 2,
            ..Config::default()
        });
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn case_generation_is_replayable_from_index_alone() {
        let cfg = Config::default();
        let corpus = crate::corpus::seeds();
        let (i1, o1) = run_case(&cfg, &corpus, 12345);
        let (i2, o2) = run_case(&cfg, &corpus, 12345);
        assert_eq!(i1, i2);
        assert_eq!(o1, o2);
    }
}
