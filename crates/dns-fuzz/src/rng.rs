//! Deterministic per-case randomness.
//!
//! Uses the exact seed-derivation scheme of the experiment runner
//! (`mec-cdn::runner::derive_seed`): a case's seed depends only on the
//! campaign's root seed and the case index, never on which thread runs
//! it or in what order — the property every thread-count byte-identity
//! guarantee in this workspace rests on.

/// The golden-ratio increment splitmix64 advances by.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64's output mixing function.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for one fuzz case from the campaign's root seed —
/// the same `(root, idx)`-only derivation the experiment runner uses.
pub fn derive_seed(root: u64, case_idx: u64) -> u64 {
    splitmix64(root.wrapping_add(case_idx.wrapping_mul(GOLDEN)))
}

/// A splitmix64-stream RNG seeded per case. Cheap, allocation-free and
/// fully determined by its seed.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// An RNG whose whole stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        splitmix64(self.state)
    }

    /// A uniform value in `0..n`. `n` must be non-zero.
    ///
    /// Multiply-shift reduction: biased by at most 2⁻⁶⁴·n, which is
    /// irrelevant for fuzzing and keeps the hot path division-free.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        (((u128::from(self.next_u64()) * n as u128) >> 64) as usize).min(n.saturating_sub(1))
    }

    /// One random octet.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A random `u16` (for ids, counts, lengths).
    pub fn u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_matches_runner_scheme() {
        // Locked-down values: if the experiment runner's scheme and this
        // one ever drift apart, case indices stop being portable between
        // fuzz reports and repro campaigns.
        assert_eq!(derive_seed(2020, 0), splitmix64(2020));
        assert_eq!(
            derive_seed(7, 3),
            splitmix64(7u64.wrapping_add(3u64.wrapping_mul(GOLDEN)))
        );
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = FuzzRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = FuzzRng::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = FuzzRng::new(9);
        for n in [1usize, 2, 3, 17, 255, 4096] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
    }
}
