//! The committed seed corpus: real encoded messages the mutation
//! engines start from.
//!
//! Seeds are built programmatically from `dns-wire`'s own builders —
//! the messages the MEC-CDN experiments actually exchange (ECS-tagged
//! queries, CNAME-chain responses, delegations with glue, SOA
//! negatives, TXT/SRV/MX service records) — and committed as binary
//! fixtures under `corpus/seeds/`. The `committed_corpus_matches_builders`
//! test keeps the two in lock-step; regenerate the files with
//! `cargo run -p dns-fuzz --bin fuzz_wire -- --write-seeds` after
//! changing [`build_seeds`].

use dns_wire::{
    ClientSubnet, EdnsOption, Message, Name, Opt, Question, RData, Rcode, Record, RrClass,
    RrType,
};
use std::net::Ipv4Addr;

/// The committed seed bytes, embedded at compile time.
pub const COMMITTED: [&[u8]; 10] = [
    include_bytes!("../corpus/seeds/seed-00.bin"),
    include_bytes!("../corpus/seeds/seed-01.bin"),
    include_bytes!("../corpus/seeds/seed-02.bin"),
    include_bytes!("../corpus/seeds/seed-03.bin"),
    include_bytes!("../corpus/seeds/seed-04.bin"),
    include_bytes!("../corpus/seeds/seed-05.bin"),
    include_bytes!("../corpus/seeds/seed-06.bin"),
    include_bytes!("../corpus/seeds/seed-07.bin"),
    include_bytes!("../corpus/seeds/seed-08.bin"),
    include_bytes!("../corpus/seeds/seed-09.bin"),
];

/// The seed corpus as owned buffers, ready for the mutation engines.
pub fn seeds() -> Vec<Vec<u8>> {
    COMMITTED.iter().map(|s| s.to_vec()).collect()
}

fn n(s: &str) -> Name {
    Name::parse(s).expect("static corpus name parses")
}

/// Builds the seed messages from `dns-wire`'s builders. The source of
/// truth the committed `corpus/seeds/*.bin` files are generated from.
pub fn build_seeds() -> Vec<Vec<u8>> {
    let zone = n("mycdn.ciab.test");
    let mut out = Vec::new();
    let mut push = |m: &Message| {
        out.push(m.encode().expect("corpus seed encodes"));
    };

    // 0: plain recursive A query — the most common packet on the path.
    let mut m = Message::query(0x1001, n("video.demo1.mycdn.ciab.test"), RrType::A);
    m.header.recursion_desired = true;
    push(&m);

    // 1: A query carrying an ECS v4 /24 — the paper's §4 experiment.
    let m = Message::query(0x1002, n("img.demo2.mycdn.ciab.test"), RrType::A)
        .with_client_subnet(ClientSubnet::query("10.45.7.99".parse().unwrap(), 24));
    push(&m);

    // 2: AAAA query with ECS v6 /48, DO bit and a big payload size.
    let mut m = Message::query(0x1003, n("api.demo1.mycdn.ciab.test"), RrType::Aaaa)
        .with_client_subnet(ClientSubnet::query("2001:db8:abcd::1".parse().unwrap(), 48));
    if let Some(opt) = m.edns.as_mut() {
        opt.udp_payload_size = 4096;
        opt.dnssec_ok = true;
    }
    push(&m);

    // 3: CNAME chain + A answers sharing a suffix — exercises the
    // compression map and pointer decode.
    let mut m = Message::query(0x1004, zone.child("video").unwrap(), RrType::A);
    m.header.is_response = true;
    m.header.authoritative = true;
    m.answers.push(Record::new(
        zone.child("video").unwrap(),
        RrClass::In,
        30,
        RData::Cname(zone.child("cache-1").unwrap()),
    ));
    m.answers.push(Record::new(
        zone.child("cache-1").unwrap(),
        RrClass::In,
        30,
        RData::A(Ipv4Addr::new(10, 96, 0, 10)),
    ));
    push(&m);

    // 4: NXDOMAIN with SOA in authority — the negative-caching shape.
    let mut m = Message::query(0x1005, zone.child("nope").unwrap(), RrType::A)
        .with_rcode(Rcode::NxDomain);
    m.header.is_response = true;
    m.authorities.push(Record::new(
        zone.clone(),
        RrClass::In,
        30,
        RData::Soa {
            mname: zone.child("ns1").unwrap(),
            rname: zone.child("hostmaster").unwrap(),
            serial: 2020110401,
            refresh: 7200,
            retry: 900,
            expire: 1209600,
            minimum: 30,
        },
    ));
    push(&m);

    // 5: delegation: NS in authority plus glue A in additionals.
    let mut m = Message::query(0x1006, zone.child("deleg").unwrap(), RrType::A);
    m.header.is_response = true;
    m.authorities.push(Record::new(
        zone.clone(),
        RrClass::In,
        3600,
        RData::Ns(zone.child("ns1").unwrap()),
    ));
    m.additionals.push(Record::new(
        zone.child("ns1").unwrap(),
        RrClass::In,
        3600,
        RData::A(Ipv4Addr::new(10, 96, 0, 2)),
    ));
    push(&m);

    // 6: TXT answer with several character-strings, one non-ASCII.
    let mut m = Message::query(0x1007, zone.child("meta").unwrap(), RrType::Txt);
    m.header.is_response = true;
    m.answers.push(Record::new(
        zone.child("meta").unwrap(),
        RrClass::In,
        60,
        RData::Txt(vec![
            b"v=mec1".to_vec(),
            b"site=edge-7".to_vec(),
            vec![0xC3, 0xA9, 0x00, 0xFF],
        ]),
    ));
    push(&m);

    // 7: SRV and MX answers — the remaining name-bearing rdata types.
    let mut m = Message::query(0x1008, n("_dns._udp.mycdn.ciab.test"), RrType::Srv);
    m.header.is_response = true;
    m.answers.push(Record::new(
        n("_dns._udp.mycdn.ciab.test"),
        RrClass::In,
        60,
        RData::Srv {
            priority: 1,
            weight: 50,
            port: 53,
            target: zone.child("ldns").unwrap(),
        },
    ));
    m.additionals.push(Record::new(
        zone.clone(),
        RrClass::In,
        3600,
        RData::Mx {
            preference: 10,
            exchange: zone.child("mail").unwrap(),
        },
    ));
    push(&m);

    // 8: unusual but legal multi-question message.
    let mut m = Message::query(0x1009, n("a.ciab.test"), RrType::A);
    m.questions
        .push(Question::new(n("b.ciab.test"), RrType::Aaaa));
    push(&m);

    // 9: opaque payloads: unknown rrtype rdata + unmodeled EDNS option.
    let mut m = Message::query(0x100A, zone.child("opaque").unwrap(), RrType::Other(4711));
    m.header.is_response = true;
    m.answers.push(Record::new(
        zone.child("opaque").unwrap(),
        RrClass::In,
        60,
        RData::Unknown {
            rrtype: 4711,
            data: vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00],
        },
    ));
    m.edns = Some(Opt {
        options: vec![EdnsOption::Other {
            code: 15,
            data: vec![0, 18],
        }],
        ..Opt::default()
    });
    push(&m);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_corpus_matches_builders() {
        let built = build_seeds();
        assert_eq!(built.len(), COMMITTED.len(), "seed count drifted");
        for (i, (b, c)) in built.iter().zip(COMMITTED.iter()).enumerate() {
            assert_eq!(
                b.as_slice(),
                *c,
                "seed-{i:02}.bin is stale; regenerate with \
                 `cargo run -p dns-fuzz --bin fuzz_wire -- --write-seeds`"
            );
        }
    }

    #[test]
    fn every_seed_decodes_and_roundtrips() {
        for (i, s) in seeds().iter().enumerate() {
            let m = Message::decode(s).unwrap_or_else(|e| panic!("seed {i}: {e}"));
            assert_eq!(m.encode().unwrap(), *s, "seed {i} not canonical");
        }
    }
}
