//! Campaign summaries: mergeable, byte-stable, thread-count-blind.
//!
//! Everything in a [`Summary`] is either a commutative aggregate
//! (counts, the wrapping-add digest) or canonicalized before rendering
//! (crashers sorted by case index, error histogram in a `BTreeMap`),
//! so the rendered report is byte-identical no matter how many workers
//! produced the pieces.

use crate::oracle::Outcome;
use crate::rng::splitmix64;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// At most this many crashers are kept, lowest case index first.
pub const CRASHER_CAP: usize = 16;

/// One input the oracle rejected as a genuine failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crasher {
    /// Campaign case index (replays via `derive_seed(root, idx)`).
    pub case_idx: u64,
    /// The failing outcome.
    pub outcome: Outcome,
    /// The offending input bytes.
    pub input: Vec<u8>,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Root seed the campaign derived every case from.
    pub root_seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Inputs that passed the whole differential pipeline.
    pub accepted: u64,
    /// Inputs refused with a typed decode error.
    pub rejected: u64,
    /// Typed-refusal histogram by `WireError` variant name.
    pub err_variants: BTreeMap<&'static str, u64>,
    /// Crasher-class histogram (empty in a healthy run).
    pub crash_classes: BTreeMap<&'static str, u64>,
    /// Retained crashers, ≤ [`CRASHER_CAP`], sorted by case index.
    pub crashers: Vec<Crasher>,
    /// Order-insensitive digest over every `(case, outcome)` pair.
    pub digest: u64,
}

impl Summary {
    /// Folds one case result in.
    pub fn record(&mut self, case_idx: u64, outcome: Outcome, input: &[u8]) {
        self.cases += 1;
        // wrapping_add is commutative, so the digest is independent of
        // accumulation order — the summary's thread-identity backbone.
        self.digest = self
            .digest
            .wrapping_add(splitmix64(case_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ outcome.digest()));
        match &outcome {
            Outcome::Accepted => self.accepted += 1,
            Outcome::DecodeErr(v) => {
                self.rejected += 1;
                *self.err_variants.entry(v).or_insert(0) += 1;
            }
            other => {
                *self.crash_classes.entry(other.class()).or_insert(0) += 1;
                self.crashers.push(Crasher {
                    case_idx,
                    outcome,
                    input: input.to_vec(),
                });
                // Within a chunk cases arrive in ascending index order,
                // so the first CRASHER_CAP kept are the chunk's lowest.
                if self.crashers.len() > CRASHER_CAP {
                    self.crashers.truncate(CRASHER_CAP);
                }
            }
        }
    }

    /// Merges another summary (from a different chunk) into this one.
    pub fn merge(&mut self, other: Summary) {
        self.cases += other.cases;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.digest = self.digest.wrapping_add(other.digest);
        for (k, v) in other.err_variants {
            *self.err_variants.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.crash_classes {
            *self.crash_classes.entry(k).or_insert(0) += v;
        }
        self.crashers.extend(other.crashers);
        self.crashers.sort_by_key(|c| c.case_idx);
        self.crashers.truncate(CRASHER_CAP);
    }

    /// Total crashing cases (not capped, unlike the retained list).
    pub fn crash_count(&self) -> u64 {
        self.crash_classes.values().sum()
    }

    /// Renders the byte-stable report the CI thread-identity gate
    /// compares across `--threads` values.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "dns-fuzz summary");
        let _ = writeln!(s, "root-seed: {:#018x}", self.root_seed);
        let _ = writeln!(s, "cases: {}", self.cases);
        let _ = writeln!(s, "accepted: {}", self.accepted);
        let _ = writeln!(s, "rejected: {}", self.rejected);
        let _ = writeln!(s, "error-variants:");
        for (k, v) in &self.err_variants {
            let _ = writeln!(s, "  {k}: {v}");
        }
        let _ = writeln!(s, "crashers: {}", self.crash_count());
        for (k, v) in &self.crash_classes {
            let _ = writeln!(s, "  {k}: {v}");
        }
        for c in &self.crashers {
            let _ = writeln!(
                s,
                "  case {} [{}] {} bytes",
                c.case_idx,
                c.outcome.class(),
                c.input.len()
            );
        }
        let _ = writeln!(s, "digest: {:#018x}", self.digest);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = Summary::default();
        a.record(0, Outcome::Accepted, &[]);
        a.record(1, Outcome::DecodeErr("Truncated"), &[1]);
        let mut b = Summary::default();
        b.record(2, Outcome::DecodeErr("BadPointer"), &[2]);
        b.record(3, Outcome::NonIdempotent, &[3]);

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        ba.root_seed = ab.root_seed;
        assert_eq!(ab.render(), ba.render());
        assert_eq!(ab.digest, ba.digest);
    }

    #[test]
    fn crasher_cap_keeps_lowest_indices() {
        let mut s = Summary::default();
        for i in (0..40).rev() {
            let mut chunk = Summary::default();
            chunk.record(i, Outcome::NonIdempotent, &[i as u8]);
            s.merge(chunk);
        }
        assert_eq!(s.crashers.len(), CRASHER_CAP);
        assert_eq!(s.crashers[0].case_idx, 0);
        assert_eq!(s.crashers[CRASHER_CAP - 1].case_idx, CRASHER_CAP as u64 - 1);
        assert_eq!(s.crash_count(), 40);
    }

    #[test]
    fn render_reports_variants_sorted() {
        let mut s = Summary::default();
        s.record(0, Outcome::DecodeErr("Truncated"), &[]);
        s.record(1, Outcome::DecodeErr("BadPointer"), &[]);
        let r = s.render();
        let bad = r.find("BadPointer").unwrap();
        let trunc = r.find("Truncated").unwrap();
        assert!(bad < trunc, "BTreeMap order in render");
        assert!(r.contains("crashers: 0"));
    }
}
