//! Pinned regression fixtures.
//!
//! Each test here is a bug the fuzzer's oracle (or the analysis done
//! while building it) exposed in `dns-wire`, fixed in the same PR and
//! frozen as a hand-written wire input. If one of these regresses, the
//! fix regressed — not the fuzzer.
//!
//! Campaign-discovered crashers land in `corpus/crashers/*.bin` (see
//! the README there) and get `include_bytes!` tests appended below.

use dns_fuzz::oracle::{check, Outcome};

/// 12-byte header: id, flags=0, then the four section counts.
fn header(qd: u16, an: u16, ns: u16, ar: u16) -> Vec<u8> {
    let mut h = vec![0x12, 0x34, 0, 0];
    for c in [qd, an, ns, ar] {
        h.extend_from_slice(&c.to_be_bytes());
    }
    h
}

/// TXT rdata is opaque bytes, not UTF-8. The decoder used to funnel it
/// through lossy string conversion, so any non-UTF-8 character-string
/// re-encoded differently than it arrived: a NonIdempotent crasher.
#[test]
fn non_utf8_txt_round_trips_byte_exactly() {
    let mut m = header(1, 1, 0, 0);
    m.extend_from_slice(&[0x00, 0, 16, 0, 1]); // question: root TXT IN
    m.push(0x00); // answer owner: root
    m.extend_from_slice(&[0, 16, 0, 1]); // TXT IN
    m.extend_from_slice(&60u32.to_be_bytes());
    // rdata: one character-string of invalid UTF-8 (lone continuation
    // byte, 0xFF, truncated multibyte head).
    m.extend_from_slice(&5u16.to_be_bytes());
    m.extend_from_slice(&[4, 0x80, 0xFF, 0xC3, 0x00]);
    assert_eq!(check(&m, true), Outcome::Accepted);
}

/// A compression-pointer chain of legal strictly-backward hops that
/// exceeds the decode step budget must be refused with the typed
/// budget error — the decoder used to have no hop ceiling distinct
/// from its loop check. Chain hidden in label *content*: the second
/// qname points into the first qname's payload bytes, where each
/// pointer hops backward to the previous, ending on offset 4 (the
/// qdcount high byte 0x00, a root label).
#[test]
fn deep_pointer_chain_is_refused_not_walked() {
    let mut m = header(2, 0, 0, 0);
    let mut prev: usize = 4;
    let mut remaining = 40usize; // 41 hops total, budget is 32
    while remaining > 0 {
        let in_label = remaining.min(31);
        m.push((in_label * 2) as u8);
        for _ in 0..in_label {
            let pos = m.len();
            m.push(0xC0 | (prev >> 8) as u8);
            m.push(prev as u8);
            prev = pos;
        }
        remaining -= in_label;
    }
    m.push(0x00);
    m.extend_from_slice(&[0, 1, 0, 1]);
    m.push(0xC0 | (prev >> 8) as u8); // question 2: qname = chain tail
    m.push(prev as u8);
    m.extend_from_slice(&[0, 1, 0, 1]);
    let out = check(&m, false);
    assert_eq!(out, Outcome::DecodeErr("PointerChainTooDeep"));
    assert!(!out.is_crash());
}

/// A pointer that targets itself (or any non-earlier offset) must be a
/// typed BadPointer, never an infinite loop.
#[test]
fn self_pointing_qname_is_a_typed_error() {
    let mut m = header(1, 0, 0, 0);
    m.extend_from_slice(&[0xC0, 0x0C]); // points at itself (offset 12)
    m.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(check(&m, false), Outcome::DecodeErr("BadPointer"));
}

/// Section counts the body cannot satisfy must fail with CountMismatch
/// *without* preallocating count-sized buffers first. A 13-byte message
/// claiming 65535 of everything used to reserve four 65535-entry Vecs
/// before reading a single record.
#[test]
fn lying_counts_fail_with_count_mismatch() {
    let mut m = header(0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF);
    m.push(0x00); // one root byte of "body"
    assert_eq!(check(&m, false), Outcome::DecodeErr("CountMismatch"));
}

/// A label containing a literal dot must intern to a different NameId
/// than the same bytes split into two labels: identity is label
/// *structure*, not the joined dotted string. The intern table used to
/// key on the dotted rendering, so `["a.b"]` and `["a","b"]` collided
/// — an IdSpaceMismatch crasher under the oracle.
#[test]
fn dot_inside_a_label_keeps_its_own_identity() {
    // Two questions: qname1 = one label "a.b", qname2 = labels "a","b".
    let mut m = header(2, 0, 0, 0);
    m.extend_from_slice(&[3, b'a', b'.', b'b', 0]);
    m.extend_from_slice(&[0, 1, 0, 1]);
    m.extend_from_slice(&[1, b'a', 1, b'b', 0]);
    m.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(check(&m, true), Outcome::Accepted);
}

/// ECS with more address octets than the source prefix implies must be
/// refused; the old accessor path could index past the family buffer.
#[test]
fn ecs_address_wider_than_prefix_is_refused() {
    let mut m = header(1, 0, 0, 1);
    m.extend_from_slice(&[0x00, 0, 1, 0, 1]); // question: root A IN
    m.push(0x00); // OPT owner: root
    m.extend_from_slice(&41u16.to_be_bytes());
    m.extend_from_slice(&1232u16.to_be_bytes());
    m.extend_from_slice(&0u32.to_be_bytes());
    // ECS option: family 1 (v4), prefix /8 => 1 address octet, but 2
    // supplied.
    m.extend_from_slice(&10u16.to_be_bytes()); // rdlen
    m.extend_from_slice(&8u16.to_be_bytes()); // option code ECS
    m.extend_from_slice(&6u16.to_be_bytes()); // option len
    m.extend_from_slice(&[0, 1, 8, 0, 10, 45]);
    assert_eq!(check(&m, false), Outcome::DecodeErr("BadClientSubnet"));
}

/// An OPT option whose claimed length overruns its rdata must be a
/// typed error, not a slice-index panic.
#[test]
fn opt_option_length_overflow_is_typed() {
    let mut m = header(1, 0, 0, 1);
    m.extend_from_slice(&[0x00, 0, 1, 0, 1]);
    m.push(0x00);
    m.extend_from_slice(&41u16.to_be_bytes());
    m.extend_from_slice(&1232u16.to_be_bytes());
    m.extend_from_slice(&0u32.to_be_bytes());
    m.extend_from_slice(&6u16.to_be_bytes()); // rdlen: 6 bytes follow
    m.extend_from_slice(&8u16.to_be_bytes()); // option code
    m.extend_from_slice(&0x0A_u16.to_be_bytes()); // claims 10, has 2
    m.extend_from_slice(&[1, 2]);
    assert_eq!(check(&m, false), Outcome::DecodeErr("Truncated"));
}

/// Every committed corpus seed must pass the full oracle, id-space
/// check included — the corpus is the fuzzer's definition of "known
/// good".
#[test]
fn committed_seeds_pass_the_full_oracle() {
    for (i, seed) in dns_fuzz::corpus::seeds().iter().enumerate() {
        assert_eq!(check(seed, true), Outcome::Accepted, "seed {i}");
    }
}

/// Any `.bin` crashers pinned under `corpus/crashers/` must stay
/// fixed: re-run each through the oracle and require a healthy
/// outcome. (Directory currently holds only the README; this guards
/// future pins without needing a code change.)
#[test]
fn pinned_crashers_stay_fixed() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/crashers");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("crashers dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    paths.sort();
    for p in paths {
        let bytes = std::fs::read(&p).expect("readable fixture");
        let out = check(&bytes, true);
        assert!(!out.is_crash(), "{} crashes again: {out:?}", p.display());
    }
}
