//! The cargo-test corpus runner: a fixed-seed quick-mode campaign.
//!
//! This is the fuzzing contract expressed as an ordinary test: the
//! campaign must finish, find zero crashers, and render byte-identical
//! summaries at `--threads 1`, `2` and `8`. Case counts scale with the
//! build profile — optimized builds (CI runs tier-1 under `--release`
//! for the fuzz gate) cover the full quick-mode million, debug builds
//! a fast subset — but for a given profile the campaign is exactly
//! reproducible.

use dns_fuzz::{runner, Config};

/// Quick-mode root seed, fixed forever so CI failures are replayable
/// verbatim from the log.
const SMOKE_SEED: u64 = 0x5EED_05E0_0C1A_0001;

const fn quick_cases() -> u64 {
    if cfg!(debug_assertions) {
        60_000
    } else {
        1_000_000
    }
}

#[test]
fn quick_campaign_finds_no_crashers() {
    let cfg = Config {
        root_seed: SMOKE_SEED,
        cases: quick_cases(),
        threads: 0, // all CPUs; crasher set must not depend on this
        ..Config::default()
    };
    let summary = runner::run(&cfg);
    assert_eq!(summary.cases, quick_cases());
    assert_eq!(
        summary.crash_count(),
        0,
        "crashers found:\n{}",
        summary.render()
    );
    // Both engines must have produced work: accepts from lightly
    // mutated seeds, rejects from hostile grammar output.
    assert!(summary.accepted > 0, "no input survived decode");
    assert!(summary.rejected > 0, "no input was refused");
}

#[test]
fn quick_campaign_is_byte_identical_across_thread_counts() {
    let base = Config {
        root_seed: SMOKE_SEED,
        cases: quick_cases() / 4,
        threads: 1,
        ..Config::default()
    };
    let serial = runner::run(&base).render();
    for threads in [2, 8] {
        let cfg = Config { threads, ..base };
        let parallel = runner::run(&cfg).render();
        assert_eq!(parallel, serial, "--threads {threads} diverged");
    }
}
