//! The client side of the content protocol.
//!
//! [`FetchEngine`] plays the role `dig`+`curl` play in the paper's
//! end-to-end measurements: issue a GET to a cache address (obtained
//! from DNS) and time the transfer.

use crate::protocol::{CdnMsg, CONTENT_PORT};
use netsim::{Datagram, NodeContext, SimDuration, SimTime};
use std::collections::HashMap;
use std::net::IpAddr;

/// One finished fetch.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// Correlation tag supplied at issue time.
    pub tag: u64,
    /// Object key requested.
    pub key: String,
    /// Server asked.
    pub server: IpAddr,
    /// Object size if served, `None` on MISS.
    pub size: Option<u32>,
    /// Request → response latency.
    pub latency: SimDuration,
}

struct PendingFetch {
    tag: u64,
    server: IpAddr,
    started: SimTime,
}

/// Issues content requests and matches responses by object key.
#[derive(Default)]
pub struct FetchEngine {
    pending: HashMap<String, PendingFetch>,
    /// Completed fetches, in completion order.
    pub outcomes: Vec<FetchOutcome>,
}

impl FetchEngine {
    /// An idle engine.
    pub fn new() -> Self {
        FetchEngine::default()
    }

    /// Fetches `key` from `server`. One in-flight fetch per key.
    pub fn fetch(&mut self, ctx: &mut NodeContext<'_>, server: IpAddr, key: &str, tag: u64) {
        self.pending.insert(
            key.to_string(),
            PendingFetch {
                tag,
                server,
                started: ctx.now(),
            },
        );
        ctx.send(
            server,
            CONTENT_PORT,
            CdnMsg::Get { key: key.to_string() }.encode(),
        );
    }

    /// Number of fetches awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Feeds a datagram; returns the outcome if it completed a fetch.
    pub fn on_datagram(
        &mut self,
        ctx: &mut NodeContext<'_>,
        dgram: &Datagram,
    ) -> Option<FetchOutcome> {
        let (key, size) = match CdnMsg::decode(&dgram.payload)? {
            CdnMsg::Data { key, size } => (key, Some(size)),
            CdnMsg::Miss { key } => (key, None),
            CdnMsg::Get { .. } => return None,
        };
        let pending = self.pending.remove(&key)?;
        let outcome = FetchOutcome {
            tag: pending.tag,
            key,
            server: pending.server,
            size,
            latency: ctx.now() - pending.started,
        };
        self.outcomes.push(outcome.clone());
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::Catalog;
    use crate::origin::Origin;
    use netsim::{Latency, LinkProfile, Network, NodeBehavior};

    struct App {
        engine: FetchEngine,
        origin: IpAddr,
    }
    impl NodeBehavior for App {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            self.engine.fetch(ctx, self.origin, "movie/seg-1", 7);
            self.engine.fetch(ctx, self.origin, "missing", 8);
        }
        fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
            self.engine.on_datagram(ctx, &dgram);
        }
    }

    #[test]
    fn fetch_times_and_classifies_hits_and_misses() {
        let catalog = Catalog::new();
        catalog.add("movie/seg-1", 50_000);
        let mut net = Network::new(1);
        let origin = net.add_node(
            "origin",
            ["10.0.0.1".parse::<IpAddr>().unwrap()],
            Origin::new(catalog),
        );
        let app = net.add_node(
            "app",
            ["10.0.0.2".parse::<IpAddr>().unwrap()],
            App {
                engine: FetchEngine::new(),
                origin: "10.0.0.1".parse().unwrap(),
            },
        );
        // 10 Mbps link: 50 kB serializes in 40 ms.
        net.connect(
            app,
            origin,
            LinkProfile::with_latency(Latency::ConstantMs(2.0)).with_bandwidth_bps(10_000_000),
        );
        net.run();
        let outcomes = &net.behavior::<App>(app).engine.outcomes;
        assert_eq!(outcomes.len(), 2);
        let hit = outcomes.iter().find(|o| o.tag == 7).unwrap();
        assert_eq!(hit.size, Some(50_000));
        assert!(
            hit.latency.as_millis_f64() > 40.0,
            "serialization delay missing: {}",
            hit.latency
        );
        let miss = outcomes.iter().find(|o| o.tag == 8).unwrap();
        assert_eq!(miss.size, None);
        // The tiny MISS frame queues behind the 50 kB DATA frame on the
        // same link direction (FIFO serialization), so it cannot be
        // faster than the data by more than the data's own payload time.
        assert!(miss.latency.as_millis_f64() >= 40.0);
        assert_eq!(net.behavior::<App>(app).engine.in_flight(), 0);
    }
}
