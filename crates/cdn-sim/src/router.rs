//! The Traffic Router: ATC's C-DNS, as a `dns-server` plugin.

use crate::content::ContentIndex;
use crate::geo::{GeoDb, SiteId};
use dns_server::{Plugin, PluginDecision, QueryCtx};
use dns_wire::{ClientSubnet, Message, Name, Opt, RData, Rcode, Record, RrClass, RrType};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::net::{IpAddr, Ipv4Addr};

/// Cache-selection strategy.
pub enum Selection {
    /// Rotate through the cache list.
    RoundRobin,
    /// Hash the queried name onto a cache — stable content → cache
    /// affinity, ATC's default-ish behaviour.
    ConsistentHash,
    /// Pick the cache this router has assigned least often.
    LeastAssigned,
    /// Geo-proximity: locate the client (ECS address when present,
    /// otherwise the querying resolver — which behind a P-GW NAT is the
    /// gateway, with all the inaccuracy §1 describes) and prefer caches
    /// at that site.
    Geo {
        /// The (imperfect) IP → site database.
        db: GeoDb,
        /// Site of each cache.
        cache_sites: HashMap<IpAddr, SiteId>,
    },
}

/// The C-DNS. Answers A queries for its hosted domains with a cache
/// address; refers other domains under its CDN suffix to the next tier.
pub struct TrafficRouterPlugin {
    /// The CDN's whole namespace (e.g. `mycdn.ciab.test`).
    suffix: Name,
    /// Domains hosted at *this* tier (e.g. `video.demo1.mycdn.ciab.test`).
    hosted: Vec<Name>,
    /// Cache servers at this tier (IPv4: the testbed's family).
    caches: Vec<Ipv4Addr>,
    selection: Selection,
    /// Optional live content index for content-affine selection.
    index: Option<ContentIndex>,
    /// Next-tier C-DNS for domains not hosted here.
    fallback: Option<IpAddr>,
    /// Answer TTL.
    pub ttl: u32,
    rr_counter: u64,
    assigned: HashMap<Ipv4Addr, u64>,
    /// Queries answered with a cache address.
    pub answered: u64,
    /// Queries referred to the next tier.
    pub referred: u64,
}

impl TrafficRouterPlugin {
    /// A router for `suffix`, hosting `hosted` domains on `caches`.
    pub fn new(
        suffix: Name,
        hosted: Vec<Name>,
        caches: Vec<Ipv4Addr>,
        selection: Selection,
    ) -> Self {
        assert!(!caches.is_empty(), "a traffic router needs cache servers");
        TrafficRouterPlugin {
            suffix,
            hosted,
            caches,
            selection,
            index: None,
            fallback: None,
            ttl: 30,
            rr_counter: 0,
            assigned: HashMap::new(),
            answered: 0,
            referred: 0,
        }
    }

    /// Content-affine selection from a shared index (builder style).
    pub fn with_index(mut self, index: ContentIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Next-tier C-DNS for non-hosted domains (builder style).
    pub fn with_fallback(mut self, fallback: IpAddr) -> Self {
        self.fallback = Some(fallback);
        self
    }

    fn is_hosted(&self, qname: &Name) -> bool {
        self.hosted.iter().any(|d| qname.is_subdomain_of(d))
    }

    /// Picks a cache for `qname` on behalf of `client`.
    // detlint: allow-item(hot-index, hot-panic) — every indexing and
    // unwrap here is `x % candidates.len()`-style over a non-empty
    // candidate list: the router is constructed with at least one cache
    // and `holding` falls back to the full list when empty.
    fn select(&mut self, qname: &Name, client: IpAddr) -> Ipv4Addr {
        // Content affinity first: caches already holding objects of this
        // domain keep getting it (better hit rate, the P2 requirement).
        let holding: Vec<Ipv4Addr> = match &self.index {
            Some(index) => {
                let prefix = format!("{qname}/");
                let holders = index.domain_holders(&prefix);
                self.caches
                    .iter()
                    .copied()
                    .filter(|c| holders.contains(&IpAddr::V4(*c)))
                    .collect()
            }
            None => Vec::new(),
        };
        // Borrow the cache list in place — no clone per query when no
        // content affinity applies (the common, index-less path).
        let candidates: &[Ipv4Addr] = if holding.is_empty() {
            &self.caches
        } else {
            &holding
        };
        let pick = match &self.selection {
            Selection::RoundRobin => candidates[(self.rr_counter as usize) % candidates.len()],
            Selection::ConsistentHash => {
                let mut h = DefaultHasher::new();
                // Digest-identical to hashing `canonical()` — the chosen
                // cache is an experiment output.
                qname.hash_canonical(&mut h);
                candidates[(h.finish() as usize) % candidates.len()]
            }
            Selection::LeastAssigned => *candidates
                .iter()
                .min_by_key(|c| self.assigned.get(c).copied().unwrap_or(0))
                .unwrap(),
            Selection::Geo { db, cache_sites } => {
                let site = db.locate(client);
                let is_local = |c: &Ipv4Addr| cache_sites.get(&IpAddr::V4(*c)) == Some(&site);
                let local_n = candidates.iter().copied().filter(|c| is_local(c)).count();
                let mut h = DefaultHasher::new();
                qname.hash_canonical(&mut h);
                if local_n == 0 {
                    candidates[(h.finish() as usize) % candidates.len()]
                } else {
                    candidates
                        .iter()
                        .copied()
                        .filter(|c| is_local(c))
                        .nth((h.finish() as usize) % local_n)
                        .expect("index within filtered count")
                }
            }
        };
        if matches!(self.selection, Selection::RoundRobin) {
            self.rr_counter += 1;
        }
        *self.assigned.entry(pick).or_insert(0) += 1;
        pick
    }
}

impl Plugin for TrafficRouterPlugin {
    fn name(&self) -> &'static str {
        "traffic-router"
    }

    fn on_query(&mut self, ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let Some(q) = query.question() else {
            return PluginDecision::Continue;
        };
        if !q.qname.is_subdomain_of(&self.suffix) {
            return PluginDecision::Continue;
        }
        if !self.is_hosted(&q.qname) {
            // Not at this tier: hand the query to the next-tier C-DNS —
            // the client transparently gets a farther cache.
            self.referred += 1;
            ctx.telemetry.incr("cdns.referred");
            return match self.fallback {
                Some(upstream) => PluginDecision::Forward { upstream },
                None => {
                    PluginDecision::Respond(Message::response_to(query).with_rcode(Rcode::NxDomain))
                }
            };
        }
        let mut resp = Message::response_to(query);
        resp.header.authoritative = true;
        if q.qtype == RrType::A {
            // The "client" for selection purposes: ECS address when the
            // resolver forwarded one, else the resolver itself.
            let (client, ecs) = match query.client_subnet() {
                Some(cs) => (cs.addr, Some(*cs)),
                None => (ctx.client, None),
            };
            let cache = self.select(&q.qname, client);
            ctx.telemetry.incr("cdns.answered");
            ctx.telemetry.mark(
                u64::from(query.header.id),
                ctx.now,
                "cdns.select",
                cache.to_string(),
            );
            resp.answers.push(Record::new(
                q.qname.clone(),
                RrClass::In,
                self.ttl,
                RData::A(cache),
            ));
            // Scope the answer to the prefix we actually used (RFC 7871).
            if let Some(cs) = ecs {
                resp.edns = Some(Opt::with_client_subnet(ClientSubnet {
                    scope_prefix: cs.source_prefix,
                    ..cs
                }));
            }
            self.answered += 1;
        }
        PluginDecision::Respond(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ctx_from(client: &str) -> QueryCtx {
        QueryCtx {
            now: SimTime::ZERO,
            client: client.parse().unwrap(),
            client_port: 40000,
            telemetry: netsim::Telemetry::default(),
        }
    }

    fn caches() -> Vec<Ipv4Addr> {
        vec![
            Ipv4Addr::new(10, 0, 0, 11),
            Ipv4Addr::new(10, 0, 0, 12),
            Ipv4Addr::new(10, 0, 0, 13),
        ]
    }

    fn router(selection: Selection) -> TrafficRouterPlugin {
        TrafficRouterPlugin::new(
            n("mycdn.ciab.test"),
            vec![n("video.demo1.mycdn.ciab.test")],
            caches(),
            selection,
        )
    }

    fn ask(r: &mut TrafficRouterPlugin, name: &str, client: &str) -> Option<Ipv4Addr> {
        let q = Message::query(1, n(name), RrType::A);
        match r.on_query(&ctx_from(client), &q) {
            PluginDecision::Respond(resp) => resp.answer_a_addrs().first().copied(),
            _ => None,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut r = router(Selection::RoundRobin);
        let a = ask(&mut r, "video.demo1.mycdn.ciab.test", "1.1.1.1").unwrap();
        let b = ask(&mut r, "video.demo1.mycdn.ciab.test", "1.1.1.1").unwrap();
        let c = ask(&mut r, "video.demo1.mycdn.ciab.test", "1.1.1.1").unwrap();
        let d = ask(&mut r, "video.demo1.mycdn.ciab.test", "1.1.1.1").unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, d, "period 3 rotation");
    }

    #[test]
    fn consistent_hash_is_stable_per_name() {
        let mut r = router(Selection::ConsistentHash);
        let first = ask(&mut r, "video.demo1.mycdn.ciab.test", "1.1.1.1").unwrap();
        for _ in 0..10 {
            assert_eq!(
                ask(&mut r, "video.demo1.mycdn.ciab.test", "2.2.2.2").unwrap(),
                first
            );
        }
    }

    #[test]
    fn least_assigned_balances() {
        let mut r = router(Selection::LeastAssigned);
        let mut counts: HashMap<Ipv4Addr, u32> = HashMap::new();
        for _ in 0..9 {
            *counts
                .entry(ask(&mut r, "video.demo1.mycdn.ciab.test", "1.1.1.1").unwrap())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 3);
        assert!(counts.values().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn geo_prefers_local_site_and_ecs_address() {
        let mut db = GeoDb::new(2, 0.0);
        db.map("203.0.113.0/24".parse().unwrap(), 0);
        db.map("198.51.100.0/24".parse().unwrap(), 1);
        let mut cache_sites = HashMap::new();
        cache_sites.insert("10.0.0.11".parse::<IpAddr>().unwrap(), 0);
        cache_sites.insert("10.0.0.12".parse::<IpAddr>().unwrap(), 1);
        cache_sites.insert("10.0.0.13".parse::<IpAddr>().unwrap(), 1);
        let mut r = router(Selection::Geo { db, cache_sites });
        // Resolver in site 0 → the site-0 cache.
        assert_eq!(
            ask(&mut r, "video.demo1.mycdn.ciab.test", "203.0.113.9").unwrap(),
            Ipv4Addr::new(10, 0, 0, 11)
        );
        // Same resolver but ECS pointing at site 1 → a site-1 cache.
        let q = Message::query(1, n("video.demo1.mycdn.ciab.test"), RrType::A)
            .with_client_subnet(ClientSubnet::query("198.51.100.0".parse().unwrap(), 24));
        match r.on_query(&ctx_from("203.0.113.9"), &q) {
            PluginDecision::Respond(resp) => {
                let got = resp.answer_a_addrs()[0];
                assert_ne!(got, Ipv4Addr::new(10, 0, 0, 11));
                // Response must be scoped.
                assert_eq!(resp.client_subnet().unwrap().scope_prefix, 24);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_hosted_domain_refers_to_fallback_tier() {
        let mut r = router(Selection::RoundRobin)
            .with_fallback("10.99.0.1".parse().unwrap());
        let q = Message::query(1, n("other.site.mycdn.ciab.test"), RrType::A);
        match r.on_query(&ctx_from("1.1.1.1"), &q) {
            PluginDecision::Forward { upstream } => {
                assert_eq!(upstream, "10.99.0.1".parse::<IpAddr>().unwrap());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(r.referred, 1);
    }

    #[test]
    fn non_hosted_without_fallback_is_nxdomain() {
        let mut r = router(Selection::RoundRobin);
        let q = Message::query(1, n("other.site.mycdn.ciab.test"), RrType::A);
        match r.on_query(&ctx_from("1.1.1.1"), &q) {
            PluginDecision::Respond(resp) => assert_eq!(resp.header.rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn names_outside_the_cdn_suffix_fall_through() {
        let mut r = router(Selection::RoundRobin);
        let q = Message::query(1, n("www.google.com"), RrType::A);
        assert!(matches!(
            r.on_query(&ctx_from("1.1.1.1"), &q),
            PluginDecision::Continue
        ));
    }

    #[test]
    fn content_affinity_prefers_holding_caches() {
        let index = ContentIndex::new();
        index.insert(
            "video.demo1.mycdn.ciab.test./seg-1",
            "10.0.0.12".parse().unwrap(),
        );
        let mut r = router(Selection::RoundRobin).with_index(index);
        for _ in 0..5 {
            assert_eq!(
                ask(&mut r, "video.demo1.mycdn.ciab.test", "1.1.1.1").unwrap(),
                Ipv4Addr::new(10, 0, 0, 12),
                "router must stick to the cache that has the content"
            );
        }
    }

    #[test]
    #[should_panic(expected = "needs cache servers")]
    fn empty_cache_list_rejected() {
        TrafficRouterPlugin::new(n("x.test"), vec![], vec![], Selection::RoundRobin);
    }
}
