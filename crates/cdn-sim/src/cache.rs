//! Cache servers: byte-bounded LRU with fill-through to a parent tier.

use crate::content::ContentIndex;
use crate::protocol::{CdnMsg, CONTENT_PORT};
use netsim::{Datagram, NodeBehavior, NodeContext};
use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;

/// An LRU object store bounded by total bytes.
#[derive(Debug)]
struct LruStore {
    capacity_bytes: u64,
    used_bytes: u64,
    /// key → (size, last-use counter). Ordered map so LRU-tick ties
    /// evict the lexicographically first key, not a hash-order one.
    objects: BTreeMap<String, (u32, u64)>,
    tick: u64,
}

impl LruStore {
    fn new(capacity_bytes: u64) -> Self {
        LruStore {
            capacity_bytes,
            used_bytes: 0,
            objects: BTreeMap::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, key: &str) -> Option<u32> {
        self.tick += 1;
        let tick = self.tick;
        self.objects.get_mut(key).map(|(size, last)| {
            *last = tick;
            *size
        })
    }

    /// Inserts, evicting LRU objects as needed. Returns evicted keys.
    fn insert(&mut self, key: String, size: u32) -> Vec<String> {
        let mut evicted = Vec::new();
        if u64::from(size) > self.capacity_bytes {
            return evicted; // object larger than the cache: don't store
        }
        if let Some((old, _)) = self.objects.remove(&key) {
            self.used_bytes -= u64::from(old);
        }
        while self.used_bytes + u64::from(size) > self.capacity_bytes {
            let victim = self
                .objects
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone())
                .expect("used_bytes > 0 implies an object exists");
            let (vsize, _) = self.objects.remove(&victim).unwrap();
            self.used_bytes -= u64::from(vsize);
            evicted.push(victim);
        }
        self.tick += 1;
        self.objects.insert(key, (size, self.tick));
        self.used_bytes += u64::from(size);
        evicted
    }
}

/// A CDN cache server node.
///
/// On a hit it answers immediately; on a miss it fetches from `parent`
/// (another cache tier or the origin), stores the object, updates the
/// shared [`ContentIndex`], and then answers every client waiting on
/// that object (request coalescing). With no parent, misses answer MISS.
pub struct CacheServer {
    addr: IpAddr,
    store: LruStore,
    parent: Option<IpAddr>,
    index: Option<ContentIndex>,
    /// Clients waiting per in-flight key.
    waiting: HashMap<String, Vec<Datagram>>,
    /// Cache hits served.
    pub hits: u64,
    /// Misses (triggering a parent fetch or MISS reply).
    pub misses: u64,
    /// Objects evicted over the lifetime.
    pub evictions: u64,
}

impl CacheServer {
    /// A cache at `addr` with the given byte capacity.
    pub fn new(addr: IpAddr, capacity_bytes: u64, parent: Option<IpAddr>) -> Self {
        CacheServer {
            addr,
            store: LruStore::new(capacity_bytes),
            parent,
            index: None,
            waiting: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Publishes fills/evictions to a shared content index (builder
    /// style).
    pub fn with_index(mut self, index: ContentIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.store.used_bytes
    }

    fn answer(&mut self, ctx: &mut NodeContext<'_>, request: &Datagram, key: String, size: u32) {
        let reply = CdnMsg::Data { key, size };
        ctx.send_datagram(request.reply_with(reply.encode()));
    }

    fn store_object(&mut self, key: &str, size: u32) {
        let evicted = self.store.insert(key.to_string(), size);
        self.evictions += evicted.len() as u64;
        if let Some(index) = &self.index {
            for victim in &evicted {
                index.remove(victim, self.addr);
            }
            index.insert(key, self.addr);
        }
    }
}

impl NodeBehavior for CacheServer {
    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
        match CdnMsg::decode(&dgram.payload) {
            Some(CdnMsg::Get { key }) => {
                if let Some(size) = self.store.touch(&key) {
                    self.hits += 1;
                    self.answer(ctx, &dgram, key, size);
                    return;
                }
                self.misses += 1;
                match self.parent {
                    Some(parent) => {
                        let first = !self.waiting.contains_key(&key);
                        self.waiting.entry(key.clone()).or_default().push(dgram);
                        if first {
                            ctx.send(
                                parent,
                                CONTENT_PORT,
                                CdnMsg::Get { key }.encode(),
                            );
                        }
                    }
                    None => {
                        ctx.send_datagram(dgram.reply_with(CdnMsg::Miss { key }.encode()));
                    }
                }
            }
            Some(CdnMsg::Data { key, size }) => {
                // Parent fill: store and drain waiters.
                self.store_object(&key, size);
                if let Some(waiters) = self.waiting.remove(&key) {
                    for w in waiters {
                        self.answer(ctx, &w, key.clone(), size);
                    }
                }
            }
            Some(CdnMsg::Miss { key }) => {
                if let Some(waiters) = self.waiting.remove(&key) {
                    for w in waiters {
                        ctx.send_datagram(
                            w.reply_with(CdnMsg::Miss { key: key.clone() }.encode()),
                        );
                    }
                }
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::Catalog;
    use crate::origin::Origin;
    use netsim::{Latency, LinkProfile, Network, SimDuration, SimTime, TimerToken};

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    struct Fetcher {
        cache: IpAddr,
        keys: Vec<String>,
        got: Vec<(String, CdnMsg, SimDuration)>,
        sent_at: HashMap<String, SimTime>,
    }
    impl Fetcher {
        fn new(cache: IpAddr, keys: Vec<String>) -> Self {
            Fetcher {
                cache,
                keys,
                got: vec![],
                sent_at: HashMap::new(),
            }
        }
    }
    impl NodeBehavior for Fetcher {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            for i in 0..self.keys.len() {
                ctx.set_timer(SimDuration::from_millis(50 * i as u64), i as u64);
            }
        }
        fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _t: TimerToken, i: u64) {
            let key = self.keys[i as usize].clone();
            self.sent_at.insert(key.clone(), ctx.now());
            ctx.send(self.cache, CONTENT_PORT, CdnMsg::Get { key }.encode());
        }
        fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
            if let Some(m) = CdnMsg::decode(&dgram.payload) {
                let key = match &m {
                    CdnMsg::Data { key, .. } | CdnMsg::Miss { key } | CdnMsg::Get { key } => {
                        key.clone()
                    }
                };
                let rtt = ctx.now() - self.sent_at[&key];
                self.got.push((key, m, rtt));
            }
        }
    }

    /// client —1ms— cache —20ms— origin
    fn build(keys: Vec<&str>, capacity: u64) -> (Network, netsim::NodeId, netsim::NodeId) {
        let catalog = Catalog::new();
        catalog.add("a", 1000);
        catalog.add("b", 1000);
        catalog.add("big", 4000);
        let mut net = Network::new(3);
        let origin = net.add_node("origin", [ip("10.0.0.1")], Origin::new(catalog));
        let cache = net.add_node(
            "cache",
            [ip("10.0.0.2")],
            CacheServer::new(ip("10.0.0.2"), capacity, Some(ip("10.0.0.1"))),
        );
        let client = net.add_node(
            "client",
            [ip("10.0.0.3")],
            Fetcher::new(ip("10.0.0.2"), keys.into_iter().map(String::from).collect()),
        );
        net.connect(cache, origin, LinkProfile::with_latency(Latency::ConstantMs(20.0)));
        net.connect(client, cache, LinkProfile::with_latency(Latency::ConstantMs(1.0)));
        (net, client, cache)
    }

    #[test]
    fn miss_fills_from_origin_then_hits_locally() {
        let (mut net, client, cache) = build(vec!["a", "a"], 10_000);
        net.run();
        let got = &net.behavior::<Fetcher>(client).got;
        assert_eq!(got.len(), 2);
        // First fetch pays the origin round trip (>40 ms), second is ~2 ms.
        assert!(got[0].2.as_millis_f64() > 40.0);
        assert!(got[1].2.as_millis_f64() < 5.0);
        let c = net.behavior::<CacheServer>(cache);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.used_bytes(), 1000);
    }

    #[test]
    fn eviction_under_capacity_pressure_updates_index() {
        let catalog = Catalog::new();
        catalog.add("a", 1000);
        catalog.add("b", 1000);
        let index = ContentIndex::new();
        let mut net = Network::new(4);
        let origin = net.add_node("origin", [ip("10.0.0.1")], Origin::new(catalog));
        let cache = net.add_node(
            "cache",
            [ip("10.0.0.2")],
            CacheServer::new(ip("10.0.0.2"), 1500, Some(ip("10.0.0.1")))
                .with_index(index.clone()),
        );
        let client = net.add_node(
            "client",
            [ip("10.0.0.3")],
            Fetcher::new(ip("10.0.0.2"), vec!["a".into(), "b".into()]),
        );
        net.connect(cache, origin, LinkProfile::with_latency(Latency::ConstantMs(5.0)));
        net.connect(client, cache, LinkProfile::with_latency(Latency::ConstantMs(1.0)));
        net.run();
        // Capacity 1500 holds one 1000-byte object: `a` evicted for `b`.
        let c = net.behavior::<CacheServer>(cache);
        assert_eq!(c.evictions, 1);
        assert!(index.holders("a").is_empty());
        assert_eq!(index.holders("b"), vec![ip("10.0.0.2")]);
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_parent_fetch() {
        struct Burst {
            cache: IpAddr,
            replies: usize,
        }
        impl NodeBehavior for Burst {
            fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
                for _ in 0..3 {
                    ctx.send(
                        self.cache,
                        CONTENT_PORT,
                        CdnMsg::Get { key: "a".into() }.encode(),
                    );
                }
            }
            fn on_datagram(&mut self, _ctx: &mut NodeContext<'_>, _d: Datagram) {
                self.replies += 1;
            }
        }
        let catalog = Catalog::new();
        catalog.add("a", 1000);
        let mut net = Network::new(5);
        let origin_node = net.add_node("origin", [ip("10.0.0.1")], Origin::new(catalog));
        let cache = net.add_node(
            "cache",
            [ip("10.0.0.2")],
            CacheServer::new(ip("10.0.0.2"), 10_000, Some(ip("10.0.0.1"))),
        );
        let client = net.add_node(
            "client",
            [ip("10.0.0.3")],
            Burst {
                cache: ip("10.0.0.2"),
                replies: 0,
            },
        );
        net.connect(cache, origin_node, LinkProfile::with_latency(Latency::ConstantMs(5.0)));
        net.connect(client, cache, LinkProfile::with_latency(Latency::ConstantMs(1.0)));
        net.run();
        assert_eq!(net.behavior::<Burst>(client).replies, 3);
        assert_eq!(net.behavior::<Origin>(origin_node).served, 1, "fetches must coalesce");
    }

    #[test]
    fn cache_without_parent_answers_miss() {
        let mut net = Network::new(6);
        let cache = net.add_node(
            "cache",
            [ip("10.0.0.2")],
            CacheServer::new(ip("10.0.0.2"), 10_000, None),
        );
        let client = net.add_node(
            "client",
            [ip("10.0.0.3")],
            Fetcher::new(ip("10.0.0.2"), vec!["nope".into()]),
        );
        net.connect(client, cache, LinkProfile::with_latency(Latency::ConstantMs(1.0)));
        net.run();
        let got = &net.behavior::<Fetcher>(client).got;
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].1, CdnMsg::Miss { .. }));
    }

    #[test]
    fn object_bigger_than_cache_is_served_but_not_stored() {
        let (mut net, client, cache) = build(vec!["big", "big"], 2000);
        net.run();
        let got = &net.behavior::<Fetcher>(client).got;
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0].1, CdnMsg::Data { .. }));
        let c = net.behavior::<CacheServer>(cache);
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.misses, 2, "both requests must miss");
    }
}
