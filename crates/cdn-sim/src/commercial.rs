//! The commercial multi-CDN routing model behind Figures 2 and 3.
//!
//! §2's measurements show that for a fixed CDN domain queried from one
//! geographic location, the answering cache server's CIDR range varies
//! *by access network* (Figure 3) — Akamai, Fastly and CloudFront pools
//! appear with different frequencies over campus wired, home Wi-Fi and
//! cellular paths. The paper hypothesises (§2/Q3) that this comes from
//! per-resolver load-balancing decisions, cascading CNAMEs and broker
//! indirection, all opaque to the client.
//!
//! [`MultiCdnRouter`] reproduces the *mechanism*: for each (domain,
//! querying resolver) pair it holds a weighted set of provider CIDR
//! pools and rotates deterministically through them (smooth weighted
//! round-robin), so the distribution of answers per resolver converges
//! to the configured weights — the knobs Figure 3's per-network
//! percentages map onto.

use dns_server::{Plugin, PluginDecision, QueryCtx};
use dns_wire::{Message, Name, NameId, RData, Rcode, Record, RrClass, RrType};
use netsim::Cidr;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::net::{IpAddr, Ipv4Addr};

/// One provider pool with a selection weight.
#[derive(Debug, Clone)]
pub struct PoolChoice {
    /// Human-readable provider ("Akamai", "Fastly", …).
    pub provider: &'static str,
    /// The pool's CIDR — the classification unit of Figure 3.
    pub pool: Cidr,
    /// Relative selection weight (per-resolver percentages).
    pub weight: f64,
}

impl PoolChoice {
    /// Creates a choice.
    pub fn new(provider: &'static str, pool: &str, weight: f64) -> Self {
        PoolChoice {
            provider,
            pool: pool.parse().expect("valid pool CIDR"),
            weight,
        }
    }
}

#[derive(Debug)]
struct WeightedState {
    choices: Vec<PoolChoice>,
    /// Smooth weighted round-robin accumulators.
    current: Vec<f64>,
}

impl WeightedState {
    fn new(choices: Vec<PoolChoice>) -> Self {
        let n = choices.len();
        WeightedState {
            choices,
            current: vec![0.0; n],
        }
    }

    /// Nginx-style smooth WRR: deterministic, and over N picks the
    /// frequencies match the weights exactly in the limit.
    fn pick(&mut self) -> usize {
        let total: f64 = self.choices.iter().map(|c| c.weight).sum();
        let mut best = 0;
        for i in 0..self.choices.len() {
            self.current[i] += self.choices[i].weight;
            if self.current[i] > self.current[best] {
                best = i;
            }
        }
        self.current[best] -= total;
        best
    }
}

/// The commercial C-DNS: per-(domain, resolver) weighted pool rotation.
pub struct MultiCdnRouter {
    /// (interned domain, resolver addr) → weighted pools. Ordered map:
    /// `classify` walks it, and the most-specific-pool tie-break must
    /// not depend on hash order.
    per_resolver: BTreeMap<(NameId, IpAddr), WeightedState>,
    /// Interned domain → default pools (resolvers with no override).
    defaults: BTreeMap<NameId, Vec<PoolChoice>>,
    /// Instantiated default states per (domain, resolver).
    instantiated: BTreeMap<(NameId, IpAddr), WeightedState>,
    /// Answer TTL. Commercial CDN A records are short-lived.
    pub ttl: u32,
    counter: u64,
}

impl MultiCdnRouter {
    /// An empty router.
    pub fn new() -> Self {
        MultiCdnRouter {
            per_resolver: BTreeMap::new(),
            defaults: BTreeMap::new(),
            instantiated: BTreeMap::new(),
            ttl: 30,
            counter: 0,
        }
    }

    /// Sets the pool weights a specific resolver sees for `domain` —
    /// how the per-access-network distributions of Figure 3 are wired.
    pub fn set_policy(&mut self, domain: &Name, resolver: IpAddr, pools: Vec<PoolChoice>) {
        assert!(!pools.is_empty(), "policy needs at least one pool");
        self.per_resolver
            .insert((domain.id(), resolver), WeightedState::new(pools));
    }

    /// Sets the default pools for `domain` (any other resolver).
    pub fn set_default(&mut self, domain: &Name, pools: Vec<PoolChoice>) {
        assert!(!pools.is_empty(), "policy needs at least one pool");
        self.defaults.insert(domain.id(), pools);
    }

    /// Classifies an answer address into its provider pool, if known.
    pub fn classify(&self, domain: &Name, addr: Ipv4Addr) -> Option<(&'static str, Cidr)> {
        let key = domain.id();
        let all = self
            .per_resolver
            .iter()
            .filter(|((d, _), _)| *d == key)
            .flat_map(|(_, s)| s.choices.iter())
            .chain(self.defaults.get(&key).into_iter().flatten());
        // Most specific matching pool wins (Akamai /24 inside the /8).
        all.filter(|c| c.pool.contains(IpAddr::V4(addr)))
            .max_by_key(|c| c.pool.prefix_len())
            .map(|c| (c.provider, c.pool))
    }
}

impl Default for MultiCdnRouter {
    fn default() -> Self {
        MultiCdnRouter::new()
    }
}

impl Plugin for MultiCdnRouter {
    fn name(&self) -> &'static str {
        "multi-cdn"
    }

    fn on_query(&mut self, ctx: &QueryCtx, query: &Message) -> PluginDecision {
        let Some(q) = query.question() else {
            return PluginDecision::Continue;
        };
        // A name nobody configured was never interned: alloc-free reject.
        let Some(qid) = q.qname.lookup_id() else {
            return PluginDecision::Continue;
        };
        let key = (qid, ctx.client);
        // Single lookup: a specific per-resolver policy wins; otherwise
        // lazily instantiate the domain default for this resolver. The
        // picked choice is copied out so neither map borrow outlives the
        // match (`Cidr` is `Copy`, the provider is `&'static`).
        let (provider, pool) = match self.per_resolver.get_mut(&key) {
            Some(state) => {
                let idx = state.pick();
                (state.choices[idx].provider, state.choices[idx].pool)
            }
            None => {
                let Some(defaults) = self.defaults.get(&key.0) else {
                    return PluginDecision::Continue;
                };
                let defaults = defaults.clone();
                let state = self
                    .instantiated
                    .entry(key)
                    .or_insert_with(|| WeightedState::new(defaults));
                let idx = state.pick();
                (state.choices[idx].provider, state.choices[idx].pool)
            }
        };
        ctx.telemetry.incr("cdns.multi.answer");
        ctx.telemetry.mark(
            u64::from(query.header.id),
            ctx.now,
            "cdns.pool_select",
            format!("{provider} {pool}"),
        );
        // Address within the pool: rotate deterministically so repeated
        // answers exercise several cache hosts per range.
        let mut h = DefaultHasher::new();
        // Digest-identical to `canonical().hash(&h)` without building the
        // string — the selected address (an experiment output) depends on
        // this hash, so the stream must match byte for byte.
        q.qname.hash_canonical(&mut h);
        self.counter.hash(&mut h);
        self.counter += 1;
        let addr = match pool.nth_host(h.finish() % 512) {
            IpAddr::V4(v4) => v4,
            IpAddr::V6(_) => return PluginDecision::Continue, // v4-only model
        };
        let mut resp = Message::response_to(query);
        resp.header.authoritative = true;
        if q.qtype == RrType::A {
            resp.answers.push(Record::new(
                q.qname.clone(),
                RrClass::In,
                self.ttl,
                RData::A(addr),
            ));
        } else {
            resp.header.rcode = Rcode::NoError; // NoData for other types
        }
        PluginDecision::Respond(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn ctx_from(client: &str) -> QueryCtx {
        QueryCtx {
            now: SimTime::ZERO,
            client: client.parse().unwrap(),
            client_port: 40000,
            telemetry: netsim::Telemetry::default(),
        }
    }

    fn ask(r: &mut MultiCdnRouter, name: &str, resolver: &str) -> Ipv4Addr {
        let q = Message::query(1, n(name), RrType::A);
        match r.on_query(&ctx_from(resolver), &q) {
            PluginDecision::Respond(resp) => resp.answer_a_addrs()[0],
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn weights_converge_to_configured_distribution() {
        let mut r = MultiCdnRouter::new();
        let domain = n("q-cf.bstatic.com");
        r.set_policy(
            &domain,
            "10.1.0.1".parse().unwrap(),
            vec![
                PoolChoice::new("CloudFront", "13.249.0.0/16", 0.75),
                PoolChoice::new("CloudFront", "54.230.0.0/16", 0.25),
            ],
        );
        let mut counts: BTreeMap<&'static str, u32> = BTreeMap::new();
        let pool_a: Cidr = "13.249.0.0/16".parse().unwrap();
        for _ in 0..100 {
            let a = ask(&mut r, "q-cf.bstatic.com", "10.1.0.1");
            let label = if pool_a.contains(IpAddr::V4(a)) { "a" } else { "b" };
            *counts.entry(label).or_insert(0) += 1;
        }
        assert_eq!(counts["a"], 75);
        assert_eq!(counts["b"], 25);
    }

    #[test]
    fn different_resolvers_see_different_distributions() {
        let mut r = MultiCdnRouter::new();
        let domain = n("static.tacdn.com");
        r.set_policy(
            &domain,
            "10.1.0.1".parse().unwrap(), // campus resolver
            vec![PoolChoice::new("Fastly", "151.101.0.0/16", 1.0)],
        );
        r.set_policy(
            &domain,
            "10.2.0.1".parse().unwrap(), // cellular resolver
            vec![PoolChoice::new("Akamai", "23.0.0.0/8", 1.0)],
        );
        let fastly: Cidr = "151.101.0.0/16".parse().unwrap();
        let akamai: Cidr = "23.0.0.0/8".parse().unwrap();
        for _ in 0..10 {
            assert!(fastly.contains(IpAddr::V4(ask(&mut r, "static.tacdn.com", "10.1.0.1"))));
            assert!(akamai.contains(IpAddr::V4(ask(&mut r, "static.tacdn.com", "10.2.0.1"))));
        }
    }

    #[test]
    fn default_policy_covers_unknown_resolvers() {
        let mut r = MultiCdnRouter::new();
        let domain = n("cdn0.agoda.net");
        r.set_default(
            &domain,
            vec![PoolChoice::new("Akamai", "23.55.124.0/24", 1.0)],
        );
        let pool: Cidr = "23.55.124.0/24".parse().unwrap();
        assert!(pool.contains(IpAddr::V4(ask(&mut r, "cdn0.agoda.net", "192.0.2.99"))));
    }

    #[test]
    fn unknown_domain_falls_through() {
        let mut r = MultiCdnRouter::new();
        let q = Message::query(1, n("unknown.example"), RrType::A);
        assert!(matches!(
            r.on_query(&ctx_from("1.1.1.1"), &q),
            PluginDecision::Continue
        ));
    }

    #[test]
    fn classify_picks_most_specific_pool() {
        let mut r = MultiCdnRouter::new();
        let domain = n("cdn0.agoda.net");
        r.set_default(
            &domain,
            vec![
                PoolChoice::new("Akamai", "23.0.0.0/8", 0.5),
                PoolChoice::new("Akamai-site", "23.55.124.0/24", 0.5),
            ],
        );
        let (provider, pool) = r
            .classify(&domain, Ipv4Addr::new(23, 55, 124, 9))
            .unwrap();
        assert_eq!(provider, "Akamai-site");
        assert_eq!(pool, "23.55.124.0/24".parse().unwrap());
        let (provider, _) = r.classify(&domain, Ipv4Addr::new(23, 9, 9, 9)).unwrap();
        assert_eq!(provider, "Akamai");
        assert!(r.classify(&domain, Ipv4Addr::new(151, 101, 0, 1)).is_none());
    }

    #[test]
    fn answers_rotate_within_a_pool() {
        let mut r = MultiCdnRouter::new();
        let domain = n("a0.muscache.com");
        r.set_default(
            &domain,
            vec![PoolChoice::new("Fastly", "151.101.0.0/16", 1.0)],
        );
        let a = ask(&mut r, "a0.muscache.com", "9.9.9.9");
        let b = ask(&mut r, "a0.muscache.com", "9.9.9.9");
        assert_ne!(a, b, "pool rotation should vary the host");
    }
}
