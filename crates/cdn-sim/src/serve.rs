//! Canonical serve-mode wiring: the co-located L-DNS + C-DNS pair the
//! `mecdnsd` binary runs on real UDP sockets.
//!
//! The paper's deployment (§3, Figure 4) co-locates a CoreDNS-style
//! L-DNS (cache + stub-domain) with the CDN's Traffic Router on the MEC
//! host: the stub hands the CDN namespace to the C-DNS, everything
//! stays in-process. This module packages that topology so the binary,
//! its load generator, the bench runner and the tests all serve exactly
//! the same world.

use crate::router::{Selection, TrafficRouterPlugin};
use dns_server::plugins::{CachePlugin, StubDomainPlugin};
use dns_server::{Plugin, ServeEngine};
use dns_wire::Name;
use std::net::{IpAddr, Ipv4Addr};

/// Blueprint for one serving process: which CDN namespace it owns,
/// which cache servers the C-DNS hands out, and how big the L-DNS
/// cache is. `Name`s are plain data and the intern table is a global
/// lock, so a topology can be shared across shard threads while each
/// thread builds its own (non-`Send`) engine from it.
#[derive(Debug, Clone)]
pub struct ServeTopology {
    /// The CDN's whole namespace (stub-routed to the C-DNS).
    pub suffix: Name,
    /// Domains hosted at this tier; queries beneath them get a cache
    /// address.
    pub hosted: Vec<Name>,
    /// Cache servers the Traffic Router selects among.
    pub caches: Vec<Ipv4Addr>,
    /// In-process address of the C-DNS backend chain.
    pub cdns_addr: IpAddr,
    /// L-DNS cache capacity (entries).
    pub cache_capacity: usize,
    /// Answer TTL the C-DNS attaches.
    pub ttl: u32,
}

impl Default for ServeTopology {
    /// The testbed world used throughout the workspace: the
    /// `mycdn.ciab.test` namespace with one hosted video domain and
    /// three edge caches.
    fn default() -> Self {
        let parse = |s: &str| Name::parse(s).unwrap_or_else(|_| Name::root());
        ServeTopology {
            suffix: parse("mycdn.ciab.test"),
            hosted: vec![parse("video.mycdn.ciab.test")],
            caches: vec![
                Ipv4Addr::new(10, 96, 0, 10),
                Ipv4Addr::new(10, 96, 0, 11),
                Ipv4Addr::new(10, 96, 0, 12),
            ],
            cdns_addr: IpAddr::V4(Ipv4Addr::new(10, 96, 0, 53)),
            cache_capacity: 4096,
            ttl: 30,
        }
    }
}

impl ServeTopology {
    /// The client-facing chain: L-DNS cache, then the stub that routes
    /// the CDN namespace to the in-process C-DNS.
    pub fn front_chain(&self) -> Vec<Box<dyn Plugin>> {
        vec![
            Box::new(CachePlugin::new(self.cache_capacity)),
            Box::new(StubDomainPlugin::new(vec![(
                self.suffix.clone(),
                self.cdns_addr,
            )])),
        ]
    }

    /// The C-DNS backend chain: a Traffic Router with content-stable
    /// (consistent-hash) cache selection.
    pub fn cdns_chain(&self) -> Vec<Box<dyn Plugin>> {
        let mut router = TrafficRouterPlugin::new(
            self.suffix.clone(),
            self.hosted.clone(),
            self.caches.clone(),
            Selection::ConsistentHash,
        );
        router.ttl = self.ttl;
        vec![Box::new(router)]
    }

    /// A ready engine: front chain wired to the C-DNS backend. Called
    /// once per shard thread.
    pub fn engine(&self) -> ServeEngine {
        ServeEngine::new(self.front_chain()).with_backend(self.cdns_addr, self.cdns_chain())
    }

    /// The `k`-th content name under the first hosted domain — the
    /// query population load generators draw from (Zipf over `k`).
    pub fn content_name(&self, k: usize) -> Name {
        let base = self.hosted.first().unwrap_or(&self.suffix);
        base.child(&format!("vod{k}"))
            .unwrap_or_else(|_| base.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{Message, Rcode, RrType};
    use netsim::SimTime;

    const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(127, 0, 0, 1));

    #[test]
    fn default_topology_answers_hosted_content() {
        let topo = ServeTopology::default();
        let mut engine = topo.engine();
        let q = Message::query(1, topo.content_name(0), RrType::A);
        let resp = engine.resolve(SimTime::ZERO, CLIENT, 5000, &q).unwrap();
        assert_eq!(resp.header.rcode, Rcode::NoError);
        let addrs = resp.answer_a_addrs();
        assert_eq!(addrs.len(), 1);
        assert!(topo.caches.contains(&addrs[0]), "answer must be a cache");
    }

    #[test]
    fn content_names_are_distinct_and_hosted() {
        let topo = ServeTopology::default();
        let a = topo.content_name(0);
        let b = topo.content_name(1);
        assert_ne!(a, b);
        assert!(a.is_subdomain_of(&topo.hosted[0]));
    }

    #[test]
    fn repeat_queries_hit_the_ldns_cache() {
        let topo = ServeTopology::default();
        let mut engine = topo.engine();
        let q = Message::query(1, topo.content_name(3), RrType::A);
        let first = engine.resolve(SimTime::ZERO, CLIENT, 5000, &q).unwrap();
        let second = engine.resolve(SimTime::ZERO, CLIENT, 5000, &q).unwrap();
        assert_eq!(first.answer_a_addrs(), second.answer_a_addrs());
        let cache = engine.front_plugin::<CachePlugin>(0).unwrap();
        assert_eq!(cache.hits(), 1);
    }
}
