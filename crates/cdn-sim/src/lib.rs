#![warn(missing_docs)]

//! `cdn-sim` — the CDN substrate, modelled on Apache Traffic Control.
//!
//! The paper's prototype uses ATC: a **Traffic Router** (the C-DNS of
//! Figure 1/4) answering DNS queries for the CDN domain with the address
//! of a cache server, plus the cache servers themselves. This crate
//! provides both, and the commercial multi-CDN world the paper measures
//! in Figures 2–3:
//!
//! * [`content::Catalog`] / [`content::ContentIndex`] — what exists at
//!   the origin, and which caches currently hold which objects (the
//!   index the Traffic Router consults to satisfy P2: *"C-DNS must pick
//!   a cache server which has the content"*).
//! * [`cache::CacheServer`] — an LRU, byte-bounded cache node speaking
//!   the tiny GET/DATA/MISS protocol of [`protocol`], with miss
//!   fill-through to a parent tier or the origin.
//! * [`origin::Origin`] — the content source of last resort.
//! * [`router::TrafficRouterPlugin`] — the C-DNS as a `dns-server`
//!   plugin: content-aware cache selection (consistent hash, round
//!   robin, least-assigned), ECS-aware response scoping, and referral of
//!   missing content to the next CDN tier (*"C-DNS simply returns the
//!   address of another C-DNS running at a different CDN tier"*).
//! * [`commercial::MultiCdnRouter`] — the opaque commercial behaviour
//!   §2 measures: per-resolver weighted rotation across provider CIDR
//!   pools (Akamai / Fastly / CloudFront / Edgecast in Figure 3),
//!   reproducing "requests from a similar geo-location are not
//!   guaranteed to access the same set of cache servers".
//! * [`geo::GeoDb`] — GeoIP lookup with configurable inaccuracy (§1's
//!   "CDN servers infer the location of the public gateways using GeoIP
//!   lookup and that too with limited accuracy").
//! * [`client::FetchEngine`] — the client side of the content protocol,
//!   measuring time-to-content.
//! * [`serve::ServeTopology`] — the canonical co-located L-DNS + C-DNS
//!   wiring the `mecdnsd` binary serves on real UDP sockets.
//!
//! # Modelling note
//!
//! Content transfer is a single datagram whose serialization delay is
//! `size / link bandwidth` — no TCP dynamics. The paper's claims are
//! about DNS resolution latency; content transfer only needs to scale
//! sensibly with size and distance, which this does.

pub mod cache;
pub mod client;
pub mod commercial;
pub mod content;
pub mod geo;
pub mod origin;
pub mod protocol;
pub mod router;
pub mod serve;
pub mod tier;

pub use cache::CacheServer;
pub use client::{FetchEngine, FetchOutcome};
pub use commercial::{MultiCdnRouter, PoolChoice};
pub use content::{Catalog, ContentIndex};
pub use geo::GeoDb;
pub use origin::Origin;
pub use router::{Selection, TrafficRouterPlugin};
pub use serve::ServeTopology;
pub use tier::{CdnHierarchy, TierSpec};
