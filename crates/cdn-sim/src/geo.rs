//! GeoIP emulation with bounded accuracy.
//!
//! §1 of the paper: *"CDN servers infer the location of the public
//! gateways using GeoIP lookup and that too with limited accuracy"*.
//! [`GeoDb`] maps prefixes to site identifiers and, with probability
//! `error_rate`, deterministically mislocates an address — deterministic
//! so experiments replay identically.

use netsim::Cidr;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::net::IpAddr;

/// A site (point of presence) identifier.
pub type SiteId = usize;

/// A prefix → site database with a configurable mislocation rate.
#[derive(Debug, Clone)]
pub struct GeoDb {
    entries: Vec<(Cidr, SiteId)>,
    sites: usize,
    error_rate: f64,
}

impl GeoDb {
    /// A database over `sites` sites with the given mislocation rate.
    pub fn new(sites: usize, error_rate: f64) -> Self {
        assert!(sites > 0, "need at least one site");
        GeoDb {
            entries: Vec::new(),
            sites,
            error_rate: error_rate.clamp(0.0, 1.0),
        }
    }

    /// Maps a prefix to a site.
    pub fn map(&mut self, prefix: Cidr, site: SiteId) -> &mut Self {
        assert!(site < self.sites, "site {site} out of range");
        self.entries.push((prefix, site));
        self.entries
            .sort_by_key(|(p, _)| std::cmp::Reverse(p.prefix_len()));
        self
    }

    /// Locates `addr`. Longest prefix wins; unknown addresses map to a
    /// hash-derived site (GeoIP always returns *something*). With
    /// probability `error_rate` (decided by hashing the address), the
    /// result is deterministically shifted to a wrong site.
    pub fn locate(&self, addr: IpAddr) -> SiteId {
        let base = self
            .entries
            .iter()
            .find(|(p, _)| p.contains(addr))
            .map(|&(_, s)| s)
            .unwrap_or_else(|| (hash_of(addr, 0) as usize) % self.sites);
        if self.sites > 1 && self.error_rate > 0.0 {
            let roll = hash_of(addr, 1) as f64 / u64::MAX as f64;
            if roll < self.error_rate {
                // Deterministic wrong answer, never the right one.
                let shift = 1 + (hash_of(addr, 2) as usize) % (self.sites - 1);
                return (base + shift) % self.sites;
            }
        }
        base
    }
}

fn hash_of(addr: IpAddr, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    addr.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn exact_lookup_with_zero_error() {
        let mut db = GeoDb::new(3, 0.0);
        db.map("203.0.113.0/24".parse().unwrap(), 1);
        db.map("198.51.100.0/24".parse().unwrap(), 2);
        assert_eq!(db.locate(ip("203.0.113.1")), 1);
        assert_eq!(db.locate(ip("198.51.100.77")), 2);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut db = GeoDb::new(3, 0.0);
        db.map("10.0.0.0/8".parse().unwrap(), 0);
        db.map("10.1.0.0/16".parse().unwrap(), 2);
        assert_eq!(db.locate(ip("10.1.2.3")), 2);
        assert_eq!(db.locate(ip("10.9.2.3")), 0);
    }

    #[test]
    fn unknown_addresses_still_locate_somewhere() {
        let db = GeoDb::new(4, 0.0);
        let s = db.locate(ip("8.8.8.8"));
        assert!(s < 4);
        // Deterministic.
        assert_eq!(s, db.locate(ip("8.8.8.8")));
    }

    #[test]
    fn error_rate_one_always_mislocates() {
        let mut db = GeoDb::new(3, 1.0);
        db.map("203.0.113.0/24".parse().unwrap(), 1);
        for i in 0..50 {
            let a = ip(&format!("203.0.113.{i}"));
            assert_ne!(db.locate(a), 1, "error_rate=1 must never be right");
        }
    }

    #[test]
    fn error_rate_is_roughly_respected() {
        let mut db = GeoDb::new(4, 0.3);
        db.map("10.0.0.0/8".parse().unwrap(), 0);
        let mut wrong = 0;
        let total = 2000;
        for i in 0..total {
            let a = ip(&format!("10.{}.{}.{}", i % 200, (i / 200) % 200, i % 250));
            if db.locate(a) != 0 {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!((0.2..0.4).contains(&rate), "observed error rate {rate}");
    }

    #[test]
    fn single_site_never_errors() {
        let db = GeoDb::new(1, 1.0);
        assert_eq!(db.locate(ip("1.2.3.4")), 0);
    }
}
