//! Tiered cache topologies: edge → mid → far → origin.
//!
//! §3/P2 of the paper describes the CDN as tiers: the edge at the MEC,
//! *"a mid-tier running alongside the mobile network core, or a far-tier
//! running in the cloud, accessible over WAN"*. [`CdnHierarchy::build`]
//! assembles that chain: each tier's caches fill through a parent in
//! the next tier, the last tier fills from the origin, and misses ripple
//! upward exactly once thanks to request coalescing in
//! [`crate::CacheServer`].

use crate::cache::CacheServer;
use crate::content::{Catalog, ContentIndex};
use crate::origin::Origin;
use netsim::{LinkProfile, Network, NodeId};
use std::net::IpAddr;

/// One tier's shape.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Human label ("edge", "mid", "far").
    pub name: &'static str,
    /// Number of cache servers in the tier.
    pub caches: usize,
    /// Per-cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Link between this tier and its parent tier (or the origin for
    /// the last tier).
    pub uplink: LinkProfile,
}

/// A built hierarchy.
pub struct CdnHierarchy {
    /// Cache nodes per tier, index 0 = edge.
    pub tiers: Vec<Vec<NodeId>>,
    /// Cache addresses per tier.
    pub addrs: Vec<Vec<IpAddr>>,
    /// The origin node.
    pub origin: NodeId,
    /// The shared content index updated by every cache.
    pub index: ContentIndex,
}

impl CdnHierarchy {
    /// Builds `specs` tiers (index 0 = edge) over `catalog`, with each
    /// cache parented to the next tier's cache `i % parent_count`, and
    /// the deepest tier parented to a fresh origin at `origin_addr`.
    /// Tier addresses are allocated as `10.(200+tier).0.x`.
    ///
    /// # Panics
    /// Panics if `specs` is empty or any tier has zero caches.
    pub fn build(
        net: &mut Network,
        catalog: Catalog,
        origin_addr: IpAddr,
        specs: &[TierSpec],
    ) -> CdnHierarchy {
        assert!(!specs.is_empty(), "need at least one tier");
        assert!(
            specs.iter().all(|s| s.caches > 0),
            "every tier needs at least one cache"
        );
        let origin = net.add_node("origin", [origin_addr], Origin::new(catalog));
        let index = ContentIndex::new();

        // Build from the deepest tier toward the edge so parents exist.
        let mut tiers_rev: Vec<Vec<NodeId>> = Vec::new();
        let mut addrs_rev: Vec<Vec<IpAddr>> = Vec::new();
        for (depth_from_far, (tier_idx, spec)) in specs.iter().enumerate().rev().enumerate() {
            let _ = depth_from_far;
            let parent_addrs: Option<&Vec<IpAddr>> = addrs_rev.last();
            let mut nodes = Vec::new();
            let mut addrs = Vec::new();
            for i in 0..spec.caches {
                let addr: IpAddr = format!("10.{}.0.{}", 200 + tier_idx, 10 + i)
                    .parse()
                    .expect("tier address");
                let parent = match parent_addrs {
                    Some(parents) => parents[i % parents.len()],
                    None => origin_addr,
                };
                let node = net.add_node(
                    &format!("{}-cache-{i}", spec.name),
                    [addr],
                    CacheServer::new(addr, spec.capacity_bytes, Some(parent))
                        .with_index(index.clone()),
                );
                // Uplink to the parent node.
                let parent_node = net
                    .node_by_addr(parent)
                    .expect("parent was just created");
                net.connect(node, parent_node, spec.uplink.clone());
                net.add_default_route(node, parent_node);
                nodes.push(node);
                addrs.push(addr);
            }
            tiers_rev.push(nodes);
            addrs_rev.push(addrs);
        }
        tiers_rev.reverse();
        addrs_rev.reverse();
        CdnHierarchy {
            tiers: tiers_rev,
            addrs: addrs_rev,
            origin,
            index,
        }
    }

    /// The edge tier's cache addresses (what a Traffic Router serves).
    pub fn edge_addrs(&self) -> &[IpAddr] {
        &self.addrs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CdnMsg, CONTENT_PORT};
    use netsim::{Datagram, Latency, NodeBehavior, NodeContext, SimDuration, TimerToken};

    fn specs() -> Vec<TierSpec> {
        vec![
            TierSpec {
                name: "edge",
                caches: 2,
                capacity_bytes: 1 << 20,
                uplink: LinkProfile::with_latency(Latency::ConstantMs(5.0)),
            },
            TierSpec {
                name: "mid",
                caches: 1,
                capacity_bytes: 1 << 22,
                uplink: LinkProfile::with_latency(Latency::ConstantMs(20.0)),
            },
        ]
    }

    struct Fetcher {
        target: IpAddr,
        key: String,
        times: Vec<u64>,
        latencies_ms: Vec<f64>,
        sent_at: Option<netsim::SimTime>,
    }
    impl NodeBehavior for Fetcher {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            for (i, &t) in self.times.iter().enumerate() {
                ctx.set_timer(SimDuration::from_millis(t), i as u64);
            }
        }
        fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _t: TimerToken, _d: u64) {
            self.sent_at = Some(ctx.now());
            ctx.send(
                self.target,
                CONTENT_PORT,
                CdnMsg::Get {
                    key: self.key.clone(),
                }
                .encode(),
            );
        }
        fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
            if matches!(CdnMsg::decode(&dgram.payload), Some(CdnMsg::Data { .. })) {
                let s = self.sent_at.expect("in flight");
                self.latencies_ms.push((ctx.now() - s).as_millis_f64());
            }
        }
    }

    #[test]
    fn builds_the_requested_shape() {
        let mut net = Network::new(1);
        let catalog = Catalog::new();
        catalog.add("k", 1000);
        let h = CdnHierarchy::build(
            &mut net,
            catalog,
            "198.51.100.80".parse().unwrap(),
            &specs(),
        );
        assert_eq!(h.tiers.len(), 2);
        assert_eq!(h.tiers[0].len(), 2);
        assert_eq!(h.tiers[1].len(), 1);
        assert_eq!(h.edge_addrs().len(), 2);
    }

    #[test]
    fn miss_ripples_to_origin_then_each_tier_serves_warm() {
        let mut net = Network::new(2);
        let catalog = Catalog::new();
        catalog.add("movie/seg", 10_000);
        let h = CdnHierarchy::build(
            &mut net,
            catalog,
            "198.51.100.80".parse().unwrap(),
            &specs(),
        );
        let edge0 = h.edge_addrs()[0];
        let edge1 = h.edge_addrs()[1];
        // Client fetches through edge-0 twice, then edge-1 once.
        let client = net.add_node(
            "client",
            ["172.16.0.9".parse::<IpAddr>().unwrap()],
            Fetcher {
                target: edge0,
                key: "movie/seg".into(),
                times: vec![0, 1000],
                latencies_ms: vec![],
                sent_at: None,
            },
        );
        let edge0_node = net.node_by_addr(edge0).unwrap();
        net.connect(
            client,
            edge0_node,
            LinkProfile::with_latency(Latency::ConstantMs(1.0)),
        );
        let client2 = net.add_node(
            "client2",
            ["172.16.0.10".parse::<IpAddr>().unwrap()],
            Fetcher {
                target: edge1,
                key: "movie/seg".into(),
                times: vec![2000],
                latencies_ms: vec![],
                sent_at: None,
            },
        );
        let edge1_node = net.node_by_addr(edge1).unwrap();
        net.connect(
            client2,
            edge1_node,
            LinkProfile::with_latency(Latency::ConstantMs(1.0)),
        );
        net.run();

        let c1 = &net.behavior::<Fetcher>(client).latencies_ms;
        assert_eq!(c1.len(), 2);
        // Cold: client→edge(1) + edge→mid(5) + mid→origin(20) round
        // trips ≈ 52 ms. Warm at edge: ≈ 2 ms.
        assert!(c1[0] > 50.0, "cold fetch {} too fast", c1[0]);
        assert!(c1[1] < 5.0, "warm fetch {} too slow", c1[1]);
        // The second edge misses locally but hits the *mid* tier, so it
        // pays edge+mid, not the origin WAN.
        let c2 = &net.behavior::<Fetcher>(client2).latencies_ms;
        assert_eq!(c2.len(), 1);
        assert!(c2[0] > 10.0 && c2[0] < 20.0, "mid-tier hit expected: {}", c2[0]);
        // The index saw every fill.
        assert_eq!(h.index.holders("movie/seg").len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_specs_rejected() {
        let mut net = Network::new(3);
        CdnHierarchy::build(
            &mut net,
            Catalog::new(),
            "198.51.100.80".parse().unwrap(),
            &[],
        );
    }
}
