//! The minimal content-transfer protocol caches and origins speak.
//!
//! One request/response pair per object. The DATA payload is padded to
//! the object size so link serialization delay reflects transfer cost.

/// Port content servers listen on.
pub const CONTENT_PORT: u16 = 8080;

/// A content-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdnMsg {
    /// Request an object by key.
    Get {
        /// Object key, e.g. `video.demo1.mycdn.ciab.test/seg-00042`.
        key: String,
    },
    /// The object. `size` is the logical object size; the wire payload
    /// is padded to it.
    Data {
        /// Object key.
        key: String,
        /// Object size in bytes.
        size: u32,
    },
    /// The server does not have (and cannot fetch) the object.
    Miss {
        /// Object key.
        key: String,
    },
}

impl CdnMsg {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            CdnMsg::Get { key } => {
                let mut out = vec![b'G'];
                out.extend_from_slice(&(key.len() as u16).to_be_bytes());
                out.extend_from_slice(key.as_bytes());
                out
            }
            CdnMsg::Data { key, size } => {
                let mut out = vec![b'D'];
                out.extend_from_slice(&(key.len() as u16).to_be_bytes());
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(&size.to_be_bytes());
                // Pad so the frame costs `size` bytes of serialization.
                let target = *size as usize;
                if out.len() < target {
                    out.resize(target, 0);
                }
                out
            }
            CdnMsg::Miss { key } => {
                let mut out = vec![b'M'];
                out.extend_from_slice(&(key.len() as u16).to_be_bytes());
                out.extend_from_slice(key.as_bytes());
                out
            }
        }
    }

    /// Decodes from wire bytes. Returns `None` on garbage.
    pub fn decode(bytes: &[u8]) -> Option<CdnMsg> {
        let (&tag, rest) = bytes.split_first()?;
        if rest.len() < 2 {
            return None;
        }
        let key_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
        let rest = &rest[2..];
        if rest.len() < key_len {
            return None;
        }
        let key = String::from_utf8(rest[..key_len].to_vec()).ok()?;
        let rest = &rest[key_len..];
        match tag {
            b'G' => Some(CdnMsg::Get { key }),
            b'M' => Some(CdnMsg::Miss { key }),
            b'D' => {
                if rest.len() < 4 {
                    return None;
                }
                let size = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
                Some(CdnMsg::Data { key, size })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_miss_roundtrip() {
        for msg in [
            CdnMsg::Get {
                key: "a0.muscache.com/img-1".into(),
            },
            CdnMsg::Miss { key: "x".into() },
        ] {
            assert_eq!(CdnMsg::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn data_roundtrips_and_pads() {
        let msg = CdnMsg::Data {
            key: "k".into(),
            size: 5000,
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), 5000, "payload must cost `size` bytes on the wire");
        assert_eq!(CdnMsg::decode(&bytes), Some(msg));
    }

    #[test]
    fn tiny_data_is_not_truncated() {
        // size smaller than the header: frame stays intact and decodes.
        let msg = CdnMsg::Data {
            key: "key".into(),
            size: 2,
        };
        assert_eq!(CdnMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(CdnMsg::decode(&[]), None);
        assert_eq!(CdnMsg::decode(&[b'Z', 0, 1, b'a']), None);
        assert_eq!(CdnMsg::decode(&[b'G', 0, 9, b'a']), None); // short key
        assert_eq!(CdnMsg::decode(&[b'D', 0, 1, b'a']), None); // missing size
    }
}
