//! The content catalog and the live content index.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use std::rc::Rc;

/// What exists: object key → size in bytes. Shared by the origin (which
/// serves everything in it) and workload generators (which request from
/// it).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Rc<RefCell<HashMap<String, u32>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers an object.
    pub fn add(&self, key: &str, size: u32) {
        self.inner.borrow_mut().insert(key.to_string(), size);
    }

    /// Object size, if the object exists.
    pub fn size_of(&self, key: &str) -> Option<u32> {
        self.inner.borrow().get(key).copied()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// All keys, sorted (deterministic iteration for workloads).
    pub fn keys(&self) -> Vec<String> {
        let mut k: Vec<String> = self.inner.borrow().keys().cloned().collect();
        k.sort();
        k
    }
}

/// Which caches currently hold which objects. Cache servers update it as
/// they fill and evict; the Traffic Router reads it to satisfy P2
/// ("pick a cache server which has the content").
#[derive(Debug, Clone, Default)]
pub struct ContentIndex {
    inner: Rc<RefCell<HashMap<String, HashSet<IpAddr>>>>,
}

impl ContentIndex {
    /// An empty index.
    pub fn new() -> Self {
        ContentIndex::default()
    }

    /// Records that `cache` now holds `key`.
    pub fn insert(&self, key: &str, cache: IpAddr) {
        self.inner
            .borrow_mut()
            .entry(key.to_string())
            .or_default()
            .insert(cache);
    }

    /// Records that `cache` evicted `key`.
    pub fn remove(&self, key: &str, cache: IpAddr) {
        let mut inner = self.inner.borrow_mut();
        if let Some(set) = inner.get_mut(key) {
            set.remove(&cache);
            if set.is_empty() {
                inner.remove(key);
            }
        }
    }

    /// Caches holding `key`, sorted for determinism.
    pub fn holders(&self, key: &str) -> Vec<IpAddr> {
        let inner = self.inner.borrow();
        let mut v: Vec<IpAddr> = inner
            .get(key)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// True if any cache holds `key`.
    pub fn is_cached(&self, key: &str) -> bool {
        self.inner.borrow().contains_key(key)
    }

    /// True if any object under the given domain prefix is cached —
    /// the router's "is this domain present at the edge" check.
    pub fn domain_cached(&self, domain_prefix: &str) -> bool {
        self.inner
            .borrow()
            .keys()
            .any(|k| k.starts_with(domain_prefix))
    }

    /// Caches holding *any* object under the given domain prefix, sorted
    /// — the Traffic Router's content-affinity candidate set.
    pub fn domain_holders(&self, domain_prefix: &str) -> Vec<IpAddr> {
        let inner = self.inner.borrow();
        let mut v: Vec<IpAddr> = inner
            .iter()
            .filter(|(k, _)| k.starts_with(domain_prefix))
            .flat_map(|(_, holders)| holders.iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn catalog_stores_and_lists() {
        let c = Catalog::new();
        assert!(c.is_empty());
        c.add("b/2", 100);
        c.add("a/1", 50);
        assert_eq!(c.size_of("a/1"), Some(50));
        assert_eq!(c.size_of("missing"), None);
        assert_eq!(c.keys(), vec!["a/1", "b/2"]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn catalog_clones_share_state() {
        let c = Catalog::new();
        let c2 = c.clone();
        c.add("x", 1);
        assert_eq!(c2.size_of("x"), Some(1));
    }

    #[test]
    fn index_tracks_holders() {
        let idx = ContentIndex::new();
        assert!(!idx.is_cached("k"));
        idx.insert("k", ip("10.0.0.1"));
        idx.insert("k", ip("10.0.0.2"));
        assert_eq!(idx.holders("k"), vec![ip("10.0.0.1"), ip("10.0.0.2")]);
        idx.remove("k", ip("10.0.0.1"));
        assert_eq!(idx.holders("k"), vec![ip("10.0.0.2")]);
        idx.remove("k", ip("10.0.0.2"));
        assert!(!idx.is_cached("k"));
        assert!(idx.holders("k").is_empty());
    }

    #[test]
    fn domain_prefix_check() {
        let idx = ContentIndex::new();
        idx.insert("video.demo1.mycdn.ciab.test/seg-1", ip("10.0.0.1"));
        assert!(idx.domain_cached("video.demo1.mycdn.ciab.test/"));
        assert!(!idx.domain_cached("other.domain/"));
    }
}
