//! The origin server: source of truth for all content.

use crate::content::Catalog;
use crate::protocol::CdnMsg;
use netsim::{Datagram, NodeBehavior, NodeContext};

/// Serves every object in its catalog; answers MISS for anything else.
pub struct Origin {
    catalog: Catalog,
    /// Requests served with data.
    pub served: u64,
    /// Requests for unknown objects.
    pub not_found: u64,
}

impl Origin {
    /// An origin over `catalog`.
    pub fn new(catalog: Catalog) -> Self {
        Origin {
            catalog,
            served: 0,
            not_found: 0,
        }
    }
}

impl NodeBehavior for Origin {
    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dgram: Datagram) {
        let Some(CdnMsg::Get { key }) = CdnMsg::decode(&dgram.payload) else {
            return;
        };
        let reply = match self.catalog.size_of(&key) {
            Some(size) => {
                self.served += 1;
                CdnMsg::Data { key, size }
            }
            None => {
                self.not_found += 1;
                CdnMsg::Miss { key }
            }
        };
        ctx.send_datagram(dgram.reply_with(reply.encode()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CONTENT_PORT;
    use netsim::{Latency, LinkProfile, Network};
    use std::net::IpAddr;

    struct Asker {
        origin: IpAddr,
        got: Vec<CdnMsg>,
    }
    impl NodeBehavior for Asker {
        fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
            for key in ["have", "missing"] {
                ctx.send(
                    self.origin,
                    CONTENT_PORT,
                    CdnMsg::Get { key: key.into() }.encode(),
                );
            }
        }
        fn on_datagram(&mut self, _ctx: &mut NodeContext<'_>, dgram: Datagram) {
            if let Some(m) = CdnMsg::decode(&dgram.payload) {
                self.got.push(m);
            }
        }
    }

    #[test]
    fn origin_serves_catalog_and_misses_rest() {
        let catalog = Catalog::new();
        catalog.add("have", 1234);
        let mut net = Network::new(1);
        let origin = net.add_node(
            "origin",
            ["10.0.0.1".parse::<IpAddr>().unwrap()],
            Origin::new(catalog),
        );
        let asker = net.add_node(
            "asker",
            ["10.0.0.2".parse::<IpAddr>().unwrap()],
            Asker {
                origin: "10.0.0.1".parse().unwrap(),
                got: vec![],
            },
        );
        net.connect(asker, origin, LinkProfile::with_latency(Latency::ConstantMs(1.0)));
        net.run();
        let got = &net.behavior::<Asker>(asker).got;
        assert_eq!(got.len(), 2);
        assert!(got.contains(&CdnMsg::Data {
            key: "have".into(),
            size: 1234
        }));
        assert!(got.contains(&CdnMsg::Miss {
            key: "missing".into()
        }));
        let o = net.behavior::<Origin>(origin);
        assert_eq!(o.served, 1);
        assert_eq!(o.not_found, 1);
    }
}
