//! Property-based tests for the CDN substrate: protocol fuzz, weighted
//! rotation exactness, selection stability and geo determinism.

use cdn_sim::protocol::CdnMsg;
use cdn_sim::{GeoDb, MultiCdnRouter, PoolChoice, Selection, TrafficRouterPlugin};
use dns_server::{Plugin, PluginDecision, QueryCtx};
use dns_wire::{Message, Name, RrType};
use netsim::{Cidr, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

fn ctx(client: IpAddr) -> QueryCtx {
    QueryCtx {
        now: SimTime::ZERO,
        client,
        client_port: 40000,
        telemetry: netsim::Telemetry::default(),
    }
}

fn answer(p: &mut dyn Plugin, domain: &str, client: IpAddr) -> Option<Ipv4Addr> {
    let q = Message::query(1, Name::parse(domain).unwrap(), RrType::A);
    match p.on_query(&ctx(client), &q) {
        PluginDecision::Respond(r) => r.answer_a_addrs().first().copied(),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn protocol_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = CdnMsg::decode(&bytes);
    }

    #[test]
    fn protocol_roundtrip(key in "[a-z0-9./-]{1,40}", size in 0u32..100_000) {
        for msg in [
            CdnMsg::Get { key: key.clone() },
            CdnMsg::Miss { key: key.clone() },
            CdnMsg::Data { key: key.clone(), size },
        ] {
            prop_assert_eq!(CdnMsg::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn data_frames_cost_their_size_on_the_wire(key in "[a-z]{1,10}", size in 0u32..50_000) {
        let frame = CdnMsg::Data { key: key.clone(), size }.encode();
        // Header floor plus padding to exactly `size` once above it.
        let header = 1 + 2 + key.len() + 4;
        prop_assert_eq!(frame.len(), header.max(size as usize));
    }

    #[test]
    fn smooth_wrr_matches_weights_exactly_over_whole_cycles(
        w1 in 1u32..8, w2 in 1u32..8, w3 in 1u32..8,
    ) {
        let mut router = MultiCdnRouter::new();
        let domain = Name::parse("w.test").unwrap();
        let total = (w1 + w2 + w3) as usize;
        router.set_default(
            &domain,
            vec![
                PoolChoice::new("A", "10.0.0.0/16", f64::from(w1)),
                PoolChoice::new("B", "10.1.0.0/16", f64::from(w2)),
                PoolChoice::new("C", "10.2.0.0/16", f64::from(w3)),
            ],
        );
        let pools: Vec<Cidr> = vec![
            "10.0.0.0/16".parse().unwrap(),
            "10.1.0.0/16".parse().unwrap(),
            "10.2.0.0/16".parse().unwrap(),
        ];
        let mut counts = [0usize; 3];
        // 20 whole cycles: smooth WRR hits the weights exactly.
        for _ in 0..(20 * total) {
            let a = answer(&mut router, "w.test", "9.9.9.9".parse().unwrap()).unwrap();
            let idx = pools
                .iter()
                .position(|p| p.contains(IpAddr::V4(a)))
                .expect("answer inside a pool");
            counts[idx] += 1;
        }
        prop_assert_eq!(counts[0], 20 * w1 as usize);
        prop_assert_eq!(counts[1], 20 * w2 as usize);
        prop_assert_eq!(counts[2], 20 * w3 as usize);
    }

    #[test]
    fn consistent_hash_is_independent_of_query_order(
        domains in proptest::collection::vec("[a-z]{1,8}", 1..10),
    ) {
        let caches: Vec<Ipv4Addr> = (0..8).map(|i| Ipv4Addr::new(10, 0, 0, 10 + i)).collect();
        let hosted: Vec<Name> = domains
            .iter()
            .map(|d| Name::parse(&format!("{d}.cdn.test")).unwrap())
            .collect();
        let build = || {
            TrafficRouterPlugin::new(
                Name::parse("cdn.test").unwrap(),
                hosted.clone(),
                caches.clone(),
                Selection::ConsistentHash,
            )
        };
        let mut forward = build();
        let mut reverse = build();
        let mut fwd_answers = HashMap::new();
        for d in &domains {
            let name = format!("{d}.cdn.test");
            fwd_answers.insert(
                d.clone(),
                answer(&mut forward, &name, "1.1.1.1".parse().unwrap()),
            );
        }
        for d in domains.iter().rev() {
            let name = format!("{d}.cdn.test");
            let got = answer(&mut reverse, &name, "2.2.2.2".parse().unwrap());
            prop_assert_eq!(got, fwd_answers[d], "hash must not depend on history/client");
        }
    }

    #[test]
    fn least_assigned_never_diverges_by_more_than_one(
        queries in 1usize..100,
    ) {
        let caches: Vec<Ipv4Addr> = (0..5).map(|i| Ipv4Addr::new(10, 0, 0, 10 + i)).collect();
        let mut router = TrafficRouterPlugin::new(
            Name::parse("cdn.test").unwrap(),
            vec![Name::parse("v.cdn.test").unwrap()],
            caches.clone(),
            Selection::LeastAssigned,
        );
        let mut counts: HashMap<Ipv4Addr, usize> = HashMap::new();
        for _ in 0..queries {
            let a = answer(&mut router, "v.cdn.test", "1.1.1.1".parse().unwrap()).unwrap();
            *counts.entry(a).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let min = caches
            .iter()
            .map(|c| counts.get(c).copied().unwrap_or(0))
            .min()
            .unwrap();
        prop_assert!(max - min <= 1, "imbalance {max}-{min} with {queries} queries");
    }

    #[test]
    fn geodb_is_deterministic_and_in_range(
        sites in 1usize..6,
        error in 0.0f64..1.0,
        addr in any::<u32>(),
    ) {
        let db = GeoDb::new(sites, error);
        let ip = IpAddr::V4(Ipv4Addr::from(addr));
        let a = db.locate(ip);
        prop_assert!(a < sites);
        prop_assert_eq!(db.locate(ip), a, "GeoDb must be deterministic");
    }
}
