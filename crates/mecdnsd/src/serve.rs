//! The serving loop: real UDP datagrams in, bounded responses out.
//!
//! One [`ServeConfig`] describes a fleet of shard threads. Two sharding
//! modes, because `std::net` has no portable `SO_REUSEPORT`:
//!
//! * **per-shard sockets** (default) — every shard binds its own
//!   socket; with `port = 0` each gets an ephemeral port and clients
//!   spread themselves across the advertised addresses, approximating
//!   reuseport's kernel-side spraying without any socket options.
//! * **shared socket** — one socket, `try_clone`d into every shard;
//!   the kernel wakes an arbitrary shard per datagram. One port, but
//!   contended.
//!
//! Each shard builds its own [`dns_server::ServeEngine`] from the
//! shared (plain-data) [`ServeTopology`] — engines hold `Rc` telemetry
//! and boxed plugins, so they never cross threads. Shards drain up to
//! [`BATCH`] datagrams per wakeup, decode, resolve and answer each, and
//! recycle their datagram buffers, so a warm shard allocates only what
//! message assembly itself needs. Every response leaves through
//! [`Message::encode_bounded`] against the client's advertised EDNS
//! payload budget — truncation sets the TC bit, never an overlong
//! datagram.
//!
//! This file is on the resolution hot path (`hot-panic` / `hot-index`):
//! a hostile datagram must never panic a shard.

use crate::clock::WallClock;
use cdn_sim::ServeTopology;
use dns_server::{RcodeCounts, ServeEngine};
use dns_wire::{Message, Rcode, CLASSIC_UDP_PAYLOAD};
use netsim::{MetricsRegistry, Telemetry};
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest UDP datagram we accept; a short buffer would silently
/// truncate hostile jumbo queries into plausible-looking short ones.
const RECV_BUF: usize = 65_535;

/// Datagrams drained per shard wakeup: after one blocking receive, the
/// shard opportunistically drains up to this many already-queued
/// datagrams before serving the batch.
const BATCH: usize = 16;

/// Blocking-receive bound, which is also how often a shard notices the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Histogram name for per-query serve latency (receive → send).
pub const LATENCY_METRIC: &str = "serve.latency";

/// Configuration for one serving fleet.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (loopback by default).
    pub bind: IpAddr,
    /// Base port. `0` gives every shard an ephemeral port; otherwise
    /// shard `i` binds `port + i` (or all share `port` in shared-socket
    /// mode).
    pub port: u16,
    /// Number of shard threads (clamped to at least 1).
    pub shards: usize,
    /// One kernel socket shared by all shards instead of per-shard
    /// sockets.
    pub shared_socket: bool,
    /// The world to serve.
    pub topology: ServeTopology,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: IpAddr::V4(Ipv4Addr::LOCALHOST),
            port: 0,
            shards: 1,
            shared_socket: false,
            topology: ServeTopology::default(),
        }
    }
}

/// Counters one shard accumulated; [`ServerHandle::stop`] merges all
/// shards into one.
#[derive(Debug, Default)]
pub struct ServeReport {
    /// Queries accepted into the engine.
    pub queries: u64,
    /// Responses put on the wire.
    pub responses: u64,
    /// Queries a plugin chose to ignore.
    pub ignored: u64,
    /// Datagrams that did not parse as DNS.
    pub decode_errors: u64,
    /// Responses that failed to encode even bounded (answered ServFail
    /// where possible).
    pub encode_errors: u64,
    /// Responses sent with the TC bit set.
    pub truncated: u64,
    /// Socket-level send/receive failures.
    pub io_errors: u64,
    /// Shard threads that died instead of reporting.
    pub crashed_shards: u64,
    /// Responses by rcode.
    pub rcodes: RcodeCounts,
    /// Merged telemetry (counters plus the [`LATENCY_METRIC`]
    /// histogram).
    pub metrics: MetricsRegistry,
}

impl ServeReport {
    /// Folds another shard's counters into this one.
    pub fn merge(&mut self, other: &ServeReport) {
        self.queries += other.queries;
        self.responses += other.responses;
        self.ignored += other.ignored;
        self.decode_errors += other.decode_errors;
        self.encode_errors += other.encode_errors;
        self.truncated += other.truncated;
        self.io_errors += other.io_errors;
        self.crashed_shards += other.crashed_shards;
        self.rcodes.merge(&other.rcodes);
        self.metrics.merge(&other.metrics);
    }

    /// The one-line summary behind `mecdnsd --stats`: throughput,
    /// latency percentiles and the rcode mix.
    pub fn stats_line(&self, elapsed_ns: u64) -> String {
        let secs = elapsed_ns as f64 / 1e9;
        let qps = if secs > 0.0 {
            self.responses as f64 / secs
        } else {
            0.0
        };
        let p50 = self.latency_percentile_ns(0.50).unwrap_or(0);
        let p99 = self.latency_percentile_ns(0.99).unwrap_or(0);
        format!(
            "served {} queries in {:.2}s ({:.0} qps), latency p50 {:.1}us p99 {:.1}us, \
             rcodes noerror={} nxdomain={} servfail={} refused={} other={}, \
             decode_errors={} encode_errors={} truncated={} ignored={} io_errors={}",
            self.queries,
            secs,
            qps,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            self.rcodes.noerror,
            self.rcodes.nxdomain,
            self.rcodes.servfail,
            self.rcodes.refused,
            self.rcodes.other,
            self.decode_errors,
            self.encode_errors,
            self.truncated,
            self.ignored,
            self.io_errors,
        )
    }

    /// Serve-latency percentile in nanoseconds (receive → send), `None`
    /// until something was served. `p` in `[0, 1]`.
    pub fn latency_percentile_ns(&self, p: f64) -> Option<u64> {
        let mut ns: Vec<u64> = self
            .metrics
            .histogram(LATENCY_METRIC)
            .iter()
            .map(|d| d.as_nanos())
            .collect();
        if ns.is_empty() {
            return None;
        }
        ns.sort_unstable();
        let rank = ((ns.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        ns.get(rank).copied()
    }
}

/// A running fleet: the addresses it listens on and the means to stop
/// it.
#[derive(Debug)]
pub struct ServerHandle {
    local_addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    clock: WallClock,
    shards: Vec<JoinHandle<ServeReport>>,
}

impl ServerHandle {
    /// The distinct addresses clients can target (one per shard in
    /// per-shard-socket mode, a single address in shared mode).
    pub fn local_addrs(&self) -> &[SocketAddr] {
        &self.local_addrs
    }

    /// Nanoseconds this fleet has been serving.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.elapsed_ns()
    }

    /// Raises the shutdown flag, joins every shard, and returns the
    /// merged report. Shards notice the flag within [`POLL`].
    pub fn stop(self) -> ServeReport {
        // Release pairs with the shards' Acquire loads: everything this
        // thread wrote before raising the flag (config swaps, cache
        // state) is visible to a shard by the time it sees `true` and
        // starts its drain-and-exit path.
        self.stop.store(true, Ordering::Release);
        let mut total = ServeReport::default();
        for shard in self.shards {
            match shard.join() {
                Ok(report) => total.merge(&report),
                Err(_) => total.crashed_shards += 1,
            }
        }
        total
    }
}

/// Binds the sockets and spawns the shard threads.
pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
    let shards = config.shards.max(1);
    let mut sockets = Vec::with_capacity(shards);
    if config.shared_socket {
        let sock = UdpSocket::bind((config.bind, config.port))?;
        sock.set_read_timeout(Some(POLL))?;
        for _ in 1..shards {
            sockets.push(sock.try_clone()?);
        }
        sockets.push(sock);
    } else {
        for i in 0..shards {
            let port = if config.port == 0 {
                0
            } else {
                config.port.saturating_add(i as u16)
            };
            let sock = UdpSocket::bind((config.bind, port))?;
            sock.set_read_timeout(Some(POLL))?;
            sockets.push(sock);
        }
    }
    let mut local_addrs = Vec::with_capacity(sockets.len());
    for sock in &sockets {
        let addr = sock.local_addr()?;
        if !local_addrs.contains(&addr) {
            local_addrs.push(addr);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let clock = WallClock::start();
    let mut handles = Vec::with_capacity(sockets.len());
    for sock in sockets {
        let topology = config.topology.clone();
        let stop_flag = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            shard_loop(sock, &topology, clock, &stop_flag)
        }));
    }
    Ok(ServerHandle {
        local_addrs,
        stop,
        clock,
        shards: handles,
    })
}

/// One shard: receive in batches, serve, repeat until told to stop.
fn shard_loop(
    sock: UdpSocket,
    topology: &ServeTopology,
    clock: WallClock,
    stop: &AtomicBool,
) -> ServeReport {
    let telemetry = Telemetry::new();
    let mut engine = topology.engine().with_telemetry(telemetry.clone());
    let mut report = ServeReport::default();
    let mut recv_buf = vec![0u8; RECV_BUF];
    // Slot buffers cycle between `batch` and `pool`, so a warm shard
    // reuses its datagram storage instead of allocating per packet.
    let mut batch: Vec<(Vec<u8>, SocketAddr)> = Vec::with_capacity(BATCH);
    let mut pool: Vec<Vec<u8>> = Vec::with_capacity(BATCH);
    // Raised when this shard's socket is beyond recovery; the shard
    // serves what it already drained and retires alone — the rest of
    // the fleet keeps serving.
    let mut retire = false;
    while !retire && !stop.load(Ordering::Acquire) {
        // First datagram: blocking, bounded by POLL so shutdown is
        // always noticed. Transient per-datagram failures — a Linux
        // ECONNREFUSED surfaced by an ICMP unreachable for an earlier
        // send, an EINTR — are counted and skipped, never fatal.
        match sock.recv_from(&mut recv_buf) {
            Ok((len, peer)) => stash(&recv_buf, len, peer, &mut batch, &mut pool),
            Err(e) if is_timeout(&e) => continue,
            Err(_) => {
                report.io_errors += 1;
                continue;
            }
        }
        // Drain whatever else the kernel already queued, without
        // blocking, then restore the polling timeout. Transient errors
        // mid-drain are skipped and counted like on the blocking path,
        // with a bound so a persistently erroring socket cannot spin
        // the shard inside one wakeup.
        if sock.set_nonblocking(true).is_ok() {
            let mut skipped = 0;
            while batch.len() < BATCH {
                match sock.recv_from(&mut recv_buf) {
                    Ok((len, peer)) => stash(&recv_buf, len, peer, &mut batch, &mut pool),
                    Err(e) if is_timeout(&e) => break, // queue drained
                    Err(_) => {
                        report.io_errors += 1;
                        skipped += 1;
                        if skipped >= BATCH {
                            break;
                        }
                    }
                }
            }
            if sock.set_nonblocking(false).is_err() {
                // Cannot restore blocking mode: this shard's receive
                // loop would spin. Serve what we have, then retire this
                // shard without stopping the fleet.
                report.io_errors += 1;
                retire = true;
            }
        }
        for (dgram, peer) in batch.drain(..) {
            serve_one(&mut engine, &sock, &clock, &telemetry, &mut report, &dgram, peer);
            pool.push(dgram);
        }
    }
    report.queries = engine.queries;
    report.ignored = engine.ignored;
    report.rcodes = engine.rcodes.clone();
    telemetry.with_metrics(|m| report.metrics.merge(m));
    report
}

/// Copies the received datagram into a recycled slot buffer.
fn stash(
    recv_buf: &[u8],
    len: usize,
    peer: SocketAddr,
    batch: &mut Vec<(Vec<u8>, SocketAddr)>,
    pool: &mut Vec<Vec<u8>>,
) {
    let mut slot = pool.pop().unwrap_or_default();
    slot.clear();
    if let Some(dgram) = recv_buf.get(..len) {
        slot.extend_from_slice(dgram);
    }
    batch.push((slot, peer));
}

/// Decode → resolve → bounded encode → send, for one datagram.
fn serve_one(
    engine: &mut ServeEngine,
    sock: &UdpSocket,
    clock: &WallClock,
    telemetry: &Telemetry,
    report: &mut ServeReport,
    dgram: &[u8],
    peer: SocketAddr,
) {
    let t0 = clock.now();
    let query = match Message::decode(dgram) {
        Ok(q) => q,
        Err(_) => {
            report.decode_errors += 1;
            return;
        }
    };
    let Some(response) = engine.resolve(t0, peer.ip(), peer.port(), &query) else {
        return;
    };
    let budget = payload_budget(&query);
    let bytes = match response.encode_bounded(budget) {
        Ok(bytes) => bytes,
        Err(_) => {
            // A response we cannot fit even after dropping every record
            // (pathological qname). Fail the query rather than going
            // silent; if even ServFail will not fit, drop it.
            report.encode_errors += 1;
            let servfail = Message::response_to(&query).with_rcode(Rcode::ServFail);
            match servfail.encode_bounded(budget) {
                Ok(bytes) => bytes,
                Err(_) => return,
            }
        }
    };
    if tc_bit_set(&bytes) {
        report.truncated += 1;
    }
    match sock.send_to(&bytes, peer) {
        Ok(_) => report.responses += 1,
        Err(_) => report.io_errors += 1,
    }
    let served_in = clock.now() - t0;
    telemetry.observe(LATENCY_METRIC, served_in);
}

/// The largest response datagram this client can take: its advertised
/// EDNS payload size (never below the classic 512), or 512 when it
/// advertised nothing.
fn payload_budget(query: &Message) -> usize {
    query
        .edns
        .as_ref()
        .map(|opt| usize::from(opt.udp_payload_size).max(CLASSIC_UDP_PAYLOAD))
        .unwrap_or(CLASSIC_UDP_PAYLOAD)
}

/// True when the encoded message has the TC bit set (byte 2, bit 1).
fn tc_bit_set(bytes: &[u8]) -> bool {
    bytes.get(2).is_some_and(|b| b & 0x02 != 0)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{Opt, RrType};

    fn client() -> UdpSocket {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        sock
    }

    fn ask(sock: &UdpSocket, target: SocketAddr, id: u16, name: dns_wire::Name) -> Message {
        let mut q = Message::query(id, name, RrType::A);
        q.edns = Some(Opt::default());
        sock.send_to(&q.encode().unwrap(), target).unwrap();
        let mut buf = [0u8; RECV_BUF];
        let (len, _) = sock.recv_from(&mut buf).unwrap();
        Message::decode(&buf[..len]).unwrap()
    }

    #[test]
    fn idle_fleet_stops_clean() {
        let handle = spawn(ServeConfig::default()).unwrap();
        assert_eq!(handle.local_addrs().len(), 1);
        let report = handle.stop();
        assert_eq!(report.queries, 0);
        assert_eq!(report.crashed_shards, 0);
    }

    #[test]
    fn serves_a_content_query_over_loopback() {
        let config = ServeConfig::default();
        let topo = config.topology.clone();
        let handle = spawn(config).unwrap();
        let target = handle.local_addrs()[0];
        let sock = client();
        let resp = ask(&sock, target, 42, topo.content_name(5));
        assert_eq!(resp.header.id, 42);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(topo.caches.contains(&resp.answer_a_addrs()[0]));
        let report = handle.stop();
        assert_eq!(report.queries, 1);
        assert_eq!(report.responses, 1);
        assert_eq!(report.rcodes.noerror, 1);
        assert_eq!(report.decode_errors, 0);
        assert!(report.latency_percentile_ns(0.5).unwrap() > 0);
    }

    #[test]
    fn garbage_datagrams_are_counted_not_fatal() {
        let config = ServeConfig::default();
        let topo = config.topology.clone();
        let handle = spawn(config).unwrap();
        let target = handle.local_addrs()[0];
        let sock = client();
        sock.send_to(&[0xFF; 7], target).unwrap();
        // A valid query after the garbage proves the shard survived;
        // same socket, same shard, so ordering holds.
        let resp = ask(&sock, target, 1, topo.content_name(0));
        assert_eq!(resp.header.rcode, Rcode::NoError);
        let report = handle.stop();
        assert_eq!(report.decode_errors, 1);
        assert_eq!(report.responses, 1);
        assert_eq!(report.crashed_shards, 0);
    }

    #[test]
    fn per_shard_sockets_get_distinct_ports() {
        let handle = spawn(ServeConfig {
            shards: 3,
            ..ServeConfig::default()
        })
        .unwrap();
        assert_eq!(handle.local_addrs().len(), 3);
        let topo = ServeTopology::default();
        let sock = client();
        for (i, &target) in handle.local_addrs().to_vec().iter().enumerate() {
            let resp = ask(&sock, target, i as u16, topo.content_name(i));
            assert_eq!(resp.header.rcode, Rcode::NoError);
        }
        let report = handle.stop();
        assert_eq!(report.responses, 3);
    }

    #[test]
    fn shared_socket_mode_serves_on_one_port() {
        let handle = spawn(ServeConfig {
            shards: 2,
            shared_socket: true,
            ..ServeConfig::default()
        })
        .unwrap();
        assert_eq!(handle.local_addrs().len(), 1, "one shared address");
        let topo = ServeTopology::default();
        let target = handle.local_addrs()[0];
        let sock = client();
        for id in 0..4u16 {
            let resp = ask(&sock, target, id, topo.content_name(usize::from(id)));
            assert_eq!(resp.header.id, id);
        }
        let report = handle.stop();
        assert_eq!(report.responses, 4);
        assert_eq!(report.crashed_shards, 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn connected_udp_icmp_refusal_is_counted_not_fatal() {
        // Linux reports an async ICMP port-unreachable as ECONNREFUSED
        // on the next receive of a *connected* UDP socket. Drive the
        // real shard loop over such a socket: the error must be skipped
        // and counted, and must never raise the fleet-wide stop flag or
        // kill the shard.
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dead = {
            // Bind-then-drop: a port with provably nobody listening.
            let s = UdpSocket::bind("127.0.0.1:0").unwrap();
            s.local_addr().unwrap()
        };
        sock.connect(dead).unwrap();
        sock.send(&[0u8; 12]).unwrap();
        // Let the ICMP land before the loop's first receive.
        std::thread::sleep(Duration::from_millis(50));
        sock.set_read_timeout(Some(POLL)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let shard_stop = Arc::clone(&stop);
        let topo = ServeTopology::default();
        let shard = std::thread::spawn(move || {
            shard_loop(sock, &topo, WallClock::start(), &shard_stop)
        });
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !stop.load(Ordering::Relaxed),
            "a transient socket error must not stop the fleet"
        );
        stop.store(true, Ordering::Relaxed);
        let report = shard.join().expect("shard survived the refused receive");
        assert!(report.io_errors >= 1, "the refused receive was counted");
        assert_eq!(report.queries, 0);
        assert_eq!(report.crashed_shards, 0);
    }

    #[test]
    fn response_respects_a_small_advertised_payload() {
        // An EDNS size below 512 is clamped up to the classic floor,
        // and a single-answer response fits either way: no TC.
        let config = ServeConfig::default();
        let topo = config.topology.clone();
        let handle = spawn(config).unwrap();
        let target = handle.local_addrs()[0];
        let sock = client();
        let mut q = Message::query(9, topo.content_name(2), RrType::A);
        q.edns = Some(Opt {
            udp_payload_size: 128,
            ..Opt::default()
        });
        sock.send_to(&q.encode().unwrap(), target).unwrap();
        let mut buf = [0u8; RECV_BUF];
        let (len, _) = sock.recv_from(&mut buf).unwrap();
        assert!(len <= CLASSIC_UDP_PAYLOAD);
        let resp = Message::decode(&buf[..len]).unwrap();
        assert!(!resp.header.truncated);
        let report = handle.stop();
        assert_eq!(report.truncated, 0);
    }
}
