//! `mecdnsd` binary: serve the MEC resolver on UDP, drive it with a
//! closed-loop load generator, or run both as a self-contained smoke
//! test.
//!
//! ```text
//! mecdnsd serve   [--bind IP] [--port N] [--shards N] [--shared-socket]
//!                 [--duration SECS] [--stats]
//! mecdnsd loadgen --target ADDR [--target ADDR ...] [--queries N]
//!                 [--clients N] [--names N] [--alpha F] [--seed N]
//!                 [--timeout-ms N] [--json]
//! mecdnsd smoke   [--queries N] [--shards N] [--clients N]
//! ```

use mecdnsd::{loadgen, serve, LoadgenConfig, ServeConfig};
use std::net::SocketAddr;
use std::time::Duration;

const USAGE: &str = "usage: mecdnsd <serve|loadgen|smoke> [options]
  serve    --bind IP --port N --shards N [--shared-socket]
           [--duration SECS] [--stats]
  loadgen  --target ADDR [--target ADDR ...] [--queries N] [--clients N]
           [--names N] [--alpha F] [--seed N] [--timeout-ms N] [--json]
  smoke    [--queries N] [--shards N] [--clients N]";

fn main() {
    // detlint: allow(env-read) — CLI argument intake; the process
    // boundary is the one place ambient input is allowed in.
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// Pulls the value after `flag` out of `args`, parsed; `None` when the
/// flag is absent, `Err` message when present but unparseable.
fn opt_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(pos + 1) else {
        return Err(format!("{flag} needs a value"));
    };
    raw.parse::<T>()
        .map(Some)
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn cmd_serve(args: &[String]) -> i32 {
    let mut config = ServeConfig::default();
    let duration_secs = match (|| -> Result<u64, String> {
        if let Some(bind) = opt_value(args, "--bind")? {
            config.bind = bind;
        }
        if let Some(port) = opt_value(args, "--port")? {
            config.port = port;
        }
        if let Some(shards) = opt_value(args, "--shards")? {
            config.shards = shards;
        }
        config.shared_socket = has_flag(args, "--shared-socket");
        Ok(opt_value(args, "--duration")?.unwrap_or(0))
    })() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mecdnsd serve: {e}");
            return 2;
        }
    };
    let handle = match serve::spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mecdnsd serve: bind failed: {e}");
            return 1;
        }
    };
    for addr in handle.local_addrs() {
        println!("listening on {addr}");
    }
    if duration_secs == 0 {
        // Serve until the process is killed; park forever.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(duration_secs));
    let elapsed_ns = handle.elapsed_ns();
    let report = handle.stop();
    if has_flag(args, "--stats") {
        println!("{}", report.stats_line(elapsed_ns));
    }
    i32::from(report.crashed_shards > 0)
}

fn cmd_loadgen(args: &[String]) -> i32 {
    let mut config = LoadgenConfig::default();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--target" {
            match args.get(i + 1).map(|v| v.parse::<SocketAddr>()) {
                Some(Ok(addr)) => config.targets.push(addr),
                _ => {
                    eprintln!("mecdnsd loadgen: --target needs host:port");
                    return 2;
                }
            }
        }
    }
    if let Err(e) = (|| -> Result<(), String> {
        if let Some(v) = opt_value(args, "--queries")? {
            config.queries = v;
        }
        if let Some(v) = opt_value(args, "--clients")? {
            config.clients = v;
        }
        if let Some(v) = opt_value(args, "--names")? {
            config.names = v;
        }
        if let Some(v) = opt_value(args, "--alpha")? {
            config.alpha = v;
        }
        if let Some(v) = opt_value(args, "--seed")? {
            config.seed = v;
        }
        if let Some(v) = opt_value(args, "--timeout-ms")? {
            config.timeout_ms = v;
        }
        Ok(())
    })() {
        eprintln!("mecdnsd loadgen: {e}");
        return 2;
    }
    let report = match loadgen::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mecdnsd loadgen: {e}");
            return 1;
        }
    };
    if has_flag(args, "--json") {
        println!("{}", loadgen_json(&report));
    } else {
        println!(
            "sent {} received {} ({:.0} qps), rtt p50 {:.1}us p99 {:.1}us, \
             timeouts={} decode_errors={} mismatches={} truncated={}",
            report.sent,
            report.received,
            report.qps(),
            report.percentile_ns(0.50).unwrap_or(0) as f64 / 1e3,
            report.percentile_ns(0.99).unwrap_or(0) as f64 / 1e3,
            report.timeouts,
            report.decode_errors,
            report.mismatches,
            report.truncated,
        );
    }
    i32::from(report.received == 0)
}

/// Hand-rolled JSON so the binary needs no serializer dependency; the
/// committed benchmark artifact is produced by `bench_serve`, not here.
fn loadgen_json(report: &mecdnsd::LoadReport) -> String {
    format!(
        "{{\"sent\":{},\"received\":{},\"timeouts\":{},\"decode_errors\":{},\
         \"mismatches\":{},\"truncated\":{},\"qps\":{:.2},\"p50_us\":{:.1},\"p99_us\":{:.1}}}",
        report.sent,
        report.received,
        report.timeouts,
        report.decode_errors,
        report.mismatches,
        report.truncated,
        report.qps(),
        report.percentile_ns(0.50).unwrap_or(0) as f64 / 1e3,
        report.percentile_ns(0.99).unwrap_or(0) as f64 / 1e3,
    )
}

/// In-process server + load generator over loopback, with hard
/// assertions: the CI smoke gate.
fn cmd_smoke(args: &[String]) -> i32 {
    let queries = match opt_value(args, "--queries") {
        Ok(v) => v.unwrap_or(10_000),
        Err(e) => {
            eprintln!("mecdnsd smoke: {e}");
            return 2;
        }
    };
    let shards = match opt_value(args, "--shards") {
        Ok(v) => v.unwrap_or(2),
        Err(e) => {
            eprintln!("mecdnsd smoke: {e}");
            return 2;
        }
    };
    let clients = match opt_value(args, "--clients") {
        Ok(v) => v.unwrap_or(8),
        Err(e) => {
            eprintln!("mecdnsd smoke: {e}");
            return 2;
        }
    };
    let handle = match serve::spawn(ServeConfig {
        shards,
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mecdnsd smoke: bind failed: {e}");
            return 1;
        }
    };
    let load = LoadgenConfig {
        targets: handle.local_addrs().to_vec(),
        queries,
        clients,
        ..LoadgenConfig::default()
    };
    let client_report = match loadgen::run(&load) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mecdnsd smoke: loadgen failed: {e}");
            handle.stop();
            return 1;
        }
    };
    let elapsed_ns = handle.elapsed_ns();
    let server_report = handle.stop();
    println!("server: {}", server_report.stats_line(elapsed_ns));
    println!(
        "client: sent {} received {} ({:.0} qps), rtt p50 {:.1}us p99 {:.1}us",
        client_report.sent,
        client_report.received,
        client_report.qps(),
        client_report.percentile_ns(0.50).unwrap_or(0) as f64 / 1e3,
        client_report.percentile_ns(0.99).unwrap_or(0) as f64 / 1e3,
    );
    let mut failures = Vec::new();
    if server_report.decode_errors != 0 {
        failures.push(format!(
            "server saw {} decode errors",
            server_report.decode_errors
        ));
    }
    if client_report.decode_errors != 0 {
        failures.push(format!(
            "clients saw {} decode errors",
            client_report.decode_errors
        ));
    }
    if client_report.received == 0 || client_report.qps() <= 0.0 {
        failures.push("no throughput: zero responses received".to_string());
    }
    if server_report.crashed_shards != 0 {
        failures.push(format!("{} shards crashed", server_report.crashed_shards));
    }
    if failures.is_empty() {
        println!("smoke: OK");
        0
    } else {
        for f in &failures {
            eprintln!("smoke: FAIL: {f}");
        }
        1
    }
}
