#![warn(missing_docs)]

//! `mecdnsd` — the MEC DNS daemon: the repo's resolution path on real
//! UDP sockets.
//!
//! Everything else in the workspace runs the resolver under the
//! deterministic simulator. This crate is the transport shim the paper's
//! deployment story needs: the same `dns-server` plugin chain and
//! `cdn-sim` Traffic Router (via [`cdn_sim::ServeTopology`] and
//! [`dns_server::ServeEngine`]), fed by `std::net::UdpSocket` datagrams
//! instead of simulated ones.
//!
//! * [`serve`] — the sharded serving loop: per-shard (or shared)
//!   sockets, batched receive, bounded encode (`encode_bounded`, TC on
//!   truncation), graceful shutdown into a merged [`serve::ServeReport`].
//! * [`loadgen`] — a closed-loop, Zipf-mix load generator for driving
//!   the fleet over loopback (the `bench_serve` runner and the CI smoke
//!   test are built on it).
//! * [`clock`] — the single wall-clock read site; the rest of the crate
//!   sees only virtual [`netsim::SimTime`].

pub mod clock;
pub mod loadgen;
pub mod serve;

pub use clock::WallClock;
pub use loadgen::{LoadReport, LoadgenConfig};
pub use serve::{ServeConfig, ServeReport, ServerHandle};
