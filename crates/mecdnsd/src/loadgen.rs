//! Closed-loop load generator for the serving fleet.
//!
//! Each client thread owns one socket and plays a strict closed loop:
//! send a query, wait for the matching response (or a timeout), record
//! the round-trip, repeat. Queries draw content ranks from a Zipf
//! distribution — the workload crate's model of content popularity —
//! over the topology's hosted namespace, so the L-DNS cache sees a
//! realistic hit/miss mix. Clients are seeded deterministically
//! (`seed + client index`), so two runs issue the same query streams;
//! only the timings differ.
//!
//! Latency is measured against the shared [`WallClock`], the same
//! transport-edge clock the server uses, keeping every wall-clock read
//! in `clock.rs`.

use crate::clock::WallClock;
use cdn_sim::ServeTopology;
use dns_wire::{Message, Opt, RrType};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;
use workload::Zipf;

/// Configuration for one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server addresses; client `i` targets `targets[i % len]`.
    pub targets: Vec<SocketAddr>,
    /// Total queries across all clients.
    pub queries: u64,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Distinct content names in the query population.
    pub names: usize,
    /// Zipf skew of the content popularity.
    pub alpha: f64,
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// Per-query receive timeout in milliseconds.
    pub timeout_ms: u64,
    /// The namespace to query (must match the server's).
    pub topology: ServeTopology,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            targets: Vec::new(),
            queries: 10_000,
            clients: 4,
            names: 512,
            alpha: 1.1,
            seed: 7,
            timeout_ms: 1_000,
            topology: ServeTopology::default(),
        }
    }
}

/// What the clients observed, merged across all of them.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Queries put on the wire.
    pub sent: u64,
    /// Responses received with a matching transaction id.
    pub received: u64,
    /// Queries that timed out waiting.
    pub timeouts: u64,
    /// Responses that did not parse.
    pub decode_errors: u64,
    /// Responses whose transaction id did not match the query.
    pub mismatches: u64,
    /// Responses with the TC bit set.
    pub truncated: u64,
    /// Wall time of the whole run.
    pub elapsed_ns: u64,
    /// Round-trip time of every received response, in arrival order.
    pub latencies_ns: Vec<u64>,
}

impl LoadReport {
    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.received += other.received;
        self.timeouts += other.timeouts;
        self.decode_errors += other.decode_errors;
        self.mismatches += other.mismatches;
        self.truncated += other.truncated;
        self.elapsed_ns = self.elapsed_ns.max(other.elapsed_ns);
        self.latencies_ns.extend(other.latencies_ns);
    }

    /// Completed queries per second over the whole run.
    pub fn qps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.received as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Round-trip percentile in nanoseconds (`p` in `[0, 1]`), `None`
    /// before any response arrived.
    pub fn percentile_ns(&self, p: f64) -> Option<u64> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted.get(rank).copied()
    }
}

/// Runs the configured clients to completion and merges their reports.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadReport> {
    if config.targets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "loadgen needs at least one target address",
        ));
    }
    let clients = config.clients.max(1);
    let clock = WallClock::start();
    let per_client = config.queries / clients as u64;
    let remainder = config.queries % clients as u64;
    let mut merged = LoadReport::default();
    let outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for i in 0..clients {
            let quota = per_client + u64::from((i as u64) < remainder);
            handles.push(scope.spawn(move || client_loop(i, quota, config, clock)));
        }
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Vec<_>>()
    });
    for outcome in outcomes {
        match outcome {
            Ok(Ok(report)) => merged.merge(report),
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err(io::Error::other("a loadgen client thread panicked")),
        }
    }
    merged.elapsed_ns = clock.elapsed_ns();
    Ok(merged)
}

/// One closed-loop client: its whole quota, one query in flight.
fn client_loop(
    index: usize,
    quota: u64,
    config: &LoadgenConfig,
    clock: WallClock,
) -> io::Result<LoadReport> {
    let target = config.targets[index % config.targets.len()];
    let sock = UdpSocket::bind(("0.0.0.0", 0))?;
    sock.connect(target)?;
    sock.set_read_timeout(Some(Duration::from_millis(config.timeout_ms.max(1))))?;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(index as u64));
    let zipf = Zipf::new(config.names.max(1), config.alpha);
    let mut report = LoadReport::default();
    let mut buf = vec![0u8; 65_535];
    for seq in 0..quota {
        let rank = zipf.sample(&mut rng);
        let id = (seq as u16).wrapping_add((index as u16) << 12);
        let mut query = Message::query(id, config.topology.content_name(rank), RrType::A);
        query.edns = Some(Opt::default());
        let bytes = query
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let t0 = clock.elapsed_ns();
        sock.send(&bytes)?;
        report.sent += 1;
        match sock.recv(&mut buf) {
            Ok(len) => {
                let rtt = clock.elapsed_ns().saturating_sub(t0);
                match Message::decode(&buf[..len]) {
                    Ok(resp) if resp.header.id == id => {
                        report.received += 1;
                        report.latencies_ns.push(rtt);
                        if resp.header.truncated {
                            report.truncated += 1;
                        }
                    }
                    Ok(_) => report.mismatches += 1,
                    Err(_) => report.decode_errors += 1,
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                report.timeouts += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_to_run_without_targets() {
        let err = run(&LoadgenConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn percentiles_and_qps_handle_empty_and_full() {
        let mut r = LoadReport::default();
        assert_eq!(r.percentile_ns(0.5), None);
        assert_eq!(r.qps(), 0.0);
        r.latencies_ns = vec![30, 10, 20];
        r.received = 3;
        r.elapsed_ns = 1_500_000_000;
        assert_eq!(r.percentile_ns(0.0), Some(10));
        assert_eq!(r.percentile_ns(0.5), Some(20));
        assert_eq!(r.percentile_ns(1.0), Some(30));
        assert!((r.qps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quota_split_covers_every_query() {
        // 10 queries over 4 clients: 3+3+2+2.
        let total: u64 = 10;
        let clients: u64 = 4;
        let per = total / clients;
        let rem = total % clients;
        let sum: u64 = (0..clients).map(|i| per + u64::from(i < rem)).sum();
        assert_eq!(sum, total);
    }
}
