//! The one place `mecdnsd` reads the wall clock.
//!
//! Everything downstream of the transport — plugin chains, caches, the
//! telemetry registry — runs on virtual [`SimTime`], exactly as it does
//! under the simulator, so the whole resolution path stays replayable
//! and detlint-clean. A [`WallClock`] anchors a monotonic instant at
//! process start and maps real elapsed time onto the virtual axis; the
//! serving loop asks it for "now" and never touches `std::time`
//! directly.

use netsim::{SimDuration, SimTime};
use std::time::Instant;

/// Monotonic wall-clock anchor: real elapsed time since construction,
/// presented as [`SimTime`] since the epoch.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    anchor: Instant,
}

impl WallClock {
    /// Anchors the clock at the current instant.
    pub fn start() -> Self {
        // detlint: allow(wall-clock) — this is the transport edge: real
        // sockets need real time for TTLs and latency measurement. The
        // read is confined to this constructor; everything downstream
        // sees only SimTime.
        WallClock { anchor: Instant::now() }
    }

    /// Nanoseconds elapsed since the anchor.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed time mapped onto the virtual axis: the simulation epoch
    /// is the moment the clock was anchored.
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.elapsed_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_from_the_epoch() {
        let clock = WallClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(a >= SimTime::ZERO);
    }
}
