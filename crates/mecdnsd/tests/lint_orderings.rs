//! Regression gate for the serve-loop shutdown flag.
//!
//! `ServerHandle::stop` sets an `AtomicBool` that every shard loop
//! polls, so the flag gates cross-thread control flow: the store must
//! be `Release` and the loads `Acquire`. Both sides were once
//! `Relaxed` — invisible on x86's strong memory model, a latent
//! never-terminating fleet elsewhere — and this test pins the fix by
//! running detlint's `atomic-order` rule over the file.

use detlint::engine::{scan_source, Status};
use detlint::rules::RuleId;

#[test]
fn serve_loop_stop_flag_keeps_release_acquire_ordering() {
    let src = include_str!("../src/serve.rs");
    let res = scan_source("crates/mecdnsd/src/serve.rs", src, &[RuleId::AtomicOrder]);
    let denied: Vec<_> = res
        .findings
        .iter()
        .filter(|f| f.status == Status::Deny)
        .collect();
    assert!(
        denied.is_empty(),
        "Relaxed ordering crept back onto a gating atomic in the serve loop:\n{denied:#?}"
    );
    // Guard against the rule being sidestepped: the paired sites must
    // still exist, with the strong orderings spelled out.
    assert!(src.contains("self.stop.store(true, Ordering::Release)"));
    assert!(src.contains("stop.load(Ordering::Acquire)"));
}
