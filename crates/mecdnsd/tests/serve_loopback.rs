//! End-to-end: the sharded UDP fleet under the closed-loop load
//! generator, over loopback.

use cdn_sim::ServeTopology;
use mecdnsd::{loadgen, serve, LoadgenConfig, ServeConfig};

fn drive(shards: usize, shared_socket: bool, queries: u64) {
    let handle = serve::spawn(ServeConfig {
        shards,
        shared_socket,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let load = LoadgenConfig {
        targets: handle.local_addrs().to_vec(),
        queries,
        clients: 4,
        names: 64,
        ..LoadgenConfig::default()
    };
    let client = loadgen::run(&load).expect("loadgen run");
    let elapsed_ns = handle.elapsed_ns();
    let server = handle.stop();

    assert_eq!(client.sent, queries, "closed loop must issue its quota");
    assert_eq!(client.decode_errors, 0, "every response must parse");
    assert_eq!(client.mismatches, 0, "ids must round-trip");
    assert_eq!(
        client.received + client.timeouts,
        client.sent,
        "every query resolves to a response or a timeout"
    );
    assert!(
        client.received > queries / 2,
        "loopback should answer most queries (got {}/{queries})",
        client.received
    );
    assert!(client.qps() > 0.0);

    assert_eq!(server.decode_errors, 0);
    assert_eq!(server.crashed_shards, 0);
    assert_eq!(server.queries, queries, "server must accept every query");
    assert_eq!(server.rcodes.total(), server.queries);
    assert_eq!(
        server.rcodes.noerror, server.queries,
        "hosted-content queries all resolve"
    );
    assert_eq!(server.truncated, 0, "single-answer responses never truncate");
    assert!(server.latency_percentile_ns(0.99).unwrap() > 0);
    assert!(!server.stats_line(elapsed_ns).is_empty());
}

#[test]
fn per_shard_socket_fleet_serves_a_zipf_load() {
    drive(2, false, 2_000);
}

#[test]
fn shared_socket_fleet_serves_a_zipf_load() {
    drive(2, true, 2_000);
}

#[test]
fn loadgen_streams_are_deterministic_in_content() {
    // Two runs with the same seed must issue the same query mix: the
    // server-side cache behaviour (first-query miss per distinct name)
    // pins that down without needing a packet tap.
    let topo = ServeTopology::default();
    for _ in 0..2 {
        let handle = serve::spawn(ServeConfig {
            topology: topo.clone(),
            ..ServeConfig::default()
        })
        .expect("bind");
        let load = LoadgenConfig {
            targets: handle.local_addrs().to_vec(),
            queries: 400,
            clients: 1,
            names: 32,
            seed: 11,
            ..LoadgenConfig::default()
        };
        let client = loadgen::run(&load).expect("run");
        let server = handle.stop();
        assert_eq!(client.sent, 400);
        // Misses = distinct names the single client actually drew; with
        // a fixed seed this is a fixed number ≤ 32, and every other
        // query is a cache hit.
        let misses = server.metrics.counter("dns.cache.miss");
        assert!(misses <= 32, "at most one miss per name, got {misses}");
        assert_eq!(
            server.metrics.counter("dns.cache.hit") + misses,
            server.queries
        );
    }
}
